"""Front-end load balancer: pick a replica, spill on backpressure.

The :class:`LoadBalancer` turns a request plus a replica set into a
*preference order* and dispatches to the first replica that admits the
request. A replica whose queue is full (:class:`QueueFullError`) is not a
failure — the request **spills** to the next replica in the order, and the
balancer counts the spill; only when *every* replica is saturated does the
error propagate, and the cluster's event loop reacts by flushing a replica
rather than rejecting the request.

Policies (``LoadBalancer.POLICIES``):

* ``"round_robin"`` — rotate through replicas regardless of load; the
  baseline every serving textbook starts from.
* ``"least_outstanding"`` — prefer the replica with the shortest predicted
  *drain time* (the backlog priced per request by the replica pool's
  device-cost model), the right signal when request sizes — or pool devices
  — vary by orders of magnitude. On identical pools this approximates the
  classic fewest-elements rule but is not identical to it: per-request
  pricing includes per-request overheads and size-dependent utilisation, so
  a backlog of many small requests can rank behind slightly more elements
  held as one request. Outstanding elements and requests break exact ties.
* ``"join_shortest_queue"`` — prefer the replica with the fewest outstanding
  *requests*, the classic JSQ policy; near-optimal when requests are
  similar-sized and cheap to count. Predicted drain time breaks count ties,
  so a GTX-285 replica wins an even split against a C1060 replica.

Ties always break on the lowest replica id, so routing is deterministic.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..service.queue import QueueFullError
from .replica import ServiceReplica

POLICIES = ("round_robin", "least_outstanding", "join_shortest_queue")


class LoadBalancer:
    """Routes requests across :class:`ServiceReplica` s with spill-on-full."""

    POLICIES = POLICIES

    def __init__(self, policy: str = "least_outstanding"):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown balancing policy {policy!r}; pick one of {POLICIES}"
            )
        self.policy = policy
        self._rr_cursor = 0
        self._counts = {
            "dispatched": 0,
            "spilled_requests": 0,  # requests that missed their first choice
            "spill_attempts": 0,    # individual full-queue rejections seen
            "exhausted": 0,         # dispatches that found every queue full
        }
        self._per_replica: dict[int, int] = {}

    # ------------------------------------------------------------- routing
    def preference_order(self, replicas: Sequence[ServiceReplica]
                         ) -> list[ServiceReplica]:
        """Replicas in the order this policy would try them right now."""
        if not replicas:
            raise ValueError("cannot balance over zero replicas")
        if self.policy == "round_robin":
            start = self._rr_cursor % len(replicas)
            return list(replicas[start:]) + list(replicas[:start])
        if self.policy == "least_outstanding":
            return sorted(replicas, key=lambda r: (r.pending_predicted_us,
                                                   r.pending_elements,
                                                   r.pending_requests,
                                                   r.replica_id))
        return sorted(replicas, key=lambda r: (r.pending_requests,
                                               r.pending_predicted_us,
                                               r.pending_elements,
                                               r.replica_id))

    def dispatch(self, replicas: Sequence[ServiceReplica],
                 keys: np.ndarray, values: Optional[np.ndarray],
                 arrival_us: float) -> tuple[ServiceReplica, int, int]:
        """Admit the request at the most-preferred replica with room.

        Returns ``(replica, replica-local request id, rejections)`` where
        ``rejections`` counts the full queues skipped before admission (0 =
        first choice took it). Spills down the preference order on
        :class:`QueueFullError`; raises it only when every replica is full
        (``exhausted``), leaving the caller to flush and retry. Other
        admission errors (invalid input, oversize) propagate from the first
        replica untouched — they would fail everywhere identically.
        """
        order = self.preference_order(replicas)
        rejections = 0
        for replica in order:
            try:
                request_id = replica.submit(keys, values,
                                            arrival_us=arrival_us)
            except QueueFullError:
                rejections += 1
                self._counts["spill_attempts"] += 1
                continue
            if self.policy == "round_robin":
                # advance only on success: an exhausted attempt retried
                # after a flush must see the same rotation, not skip a
                # replica
                self._rr_cursor = (self._rr_cursor + 1) % len(replicas)
            if rejections:
                self._counts["spilled_requests"] += 1
            self._counts["dispatched"] += 1
            self._per_replica[replica.replica_id] = (
                self._per_replica.get(replica.replica_id, 0) + 1
            )
            return replica, request_id, rejections
        self._counts["exhausted"] += 1
        raise QueueFullError(
            f"all {len(order)} replica queues are full; flush a replica "
            f"before retrying"
        )

    # ------------------------------------------------------------ telemetry
    def stats(self) -> dict:
        return {
            "policy": self.policy,
            **self._counts,
            "per_replica_dispatches": dict(sorted(self._per_replica.items())),
        }


__all__ = ["LoadBalancer", "POLICIES"]
