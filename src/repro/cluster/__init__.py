"""Replicated sort cluster — the scale-out layer above the sort service.

One :class:`~repro.service.SortService` is a single serving stack (queue,
micro-batcher, shard pool). This subpackage replicates that stack behind a
front end, the way distributed directory services scale by replicating and
summarising hot lookup traffic in front of the backing store:

* :mod:`repro.cluster.replica` — :class:`ServiceReplica`, one independent
  service instance (own shard pool, own simulated clock) plus the load
  signals the balancer routes on,
* :mod:`repro.cluster.router` — :class:`LoadBalancer` with pluggable
  policies (round-robin, least-outstanding-elements, join-shortest-queue)
  that spills to a sibling replica on backpressure instead of rejecting,
* :mod:`repro.cluster.cache` — :class:`SortCache`, a content-addressed LRU
  result cache (digest of key bytes + dtype + config under a byte budget):
  repeated sorts are served without touching a shard, byte-identical to a
  cold run,
* :mod:`repro.cluster.tenants` — per-tenant priority classes and
  weighted-fair-queueing credit accounting applied before replica dispatch,
* :mod:`repro.cluster.cluster` — :class:`SortCluster`, the facade running
  the discrete-event loop and merging per-replica telemetry.

Quick start::

    from repro.cluster import ClusterConfig, SortCluster, TenantSpec

    cluster = SortCluster(ClusterConfig(
        num_replicas=2,
        policy="least_outstanding",
        tenants=(TenantSpec("analytics", weight=1.0, priority=1),
                 TenantSpec("interactive", weight=4.0, priority=0)),
    ))
    ids = [cluster.submit(keys, tenant="interactive") for keys in requests]
    results = cluster.drain()
    print(cluster.stats()["cache_hit_rate"])
"""

from .cache import SortCache, request_digest
from .cluster import ClusterConfig, ClusterResult, SortCluster
from .replica import ServiceReplica
from .router import POLICIES, LoadBalancer
from .tenants import ScheduleTag, TenantScheduler, TenantSpec

__all__ = [
    "SortCache",
    "request_digest",
    "ClusterConfig",
    "ClusterResult",
    "SortCluster",
    "ServiceReplica",
    "LoadBalancer",
    "POLICIES",
    "ScheduleTag",
    "TenantScheduler",
    "TenantSpec",
]
