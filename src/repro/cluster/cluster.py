"""The replicated sort cluster: tenant scheduler → cache → balancer → replicas.

:class:`SortCluster` is the front end over N :class:`ServiceReplica` s. Its
:meth:`drain` runs one discrete-event loop that keeps every replica's clock
coherent with the cluster timeline:

1. pending requests are admitted to the *ready set* in arrival order;
2. among ready requests the :class:`TenantScheduler` picks the next one
   (strict priority classes, weighted fair queueing within a class);
3. the request is looked up in the content-addressed :class:`SortCache` —
   a hit is served without touching any replica, and a request whose digest
   is already in flight in this drain *coalesces* onto the earlier miss;
4. a miss is dispatched through the :class:`LoadBalancer`, which spills to
   the next replica on :class:`QueueFullError`; if every queue is full the
   cluster flushes the replicas (drains their backlogs, advancing their
   clocks) and retries instead of rejecting;
5. after routing, every replica drains, results are collected, misses are
   inserted into the cache, and coalesced requests are resolved against the
   primary's output.

Because replicas share one configuration and the sorter's sampling seed is a
pure function of the request bytes, the output of any request — any routing
policy, cache hit or miss, any tenant weights — is byte-identical to a solo
:meth:`SampleSorter.sort`.

Cluster telemetry (:meth:`stats`) merges the per-replica ``stats()`` into
cluster totals: per-tenant latency percentiles, per-replica occupancy over the
cluster makespan, cache hit rate, spill and flush counts — with the invariant
that replica-served + cache-served request counts sum to cluster completions.

Health introspection rides on top of that telemetry without touching it:
``ClusterConfig.slos`` attaches :class:`repro.obs.SLOSpec` promises that a
:class:`repro.obs.SLOEngine` evaluates at every drain from the registry's
event-time histograms (see :mod:`repro.obs.sli`), and
:meth:`SortCluster.health_snapshot` bundles SLO states, error budgets,
per-replica occupancy and the structured event log for
:func:`repro.harness.format_health_report`. The event log — spills, forced
flushes, cache churn, admission rejects, SLO transitions — follows the
tracing gate (``trace_mode`` / ``REPRO_TRACE``): under ``"off"`` it records
nothing and every ``stats()`` byte stays identical, while SLO evaluation
itself is trace-independent because the metrics registry always records.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Union

import numpy as np

from ..core.config import SampleSortConfig
from ..core.launch_plan import merge_utilization
from ..gpu.device import DeviceSpec
from ..gpu.errors import DeviceConfigError, GpuSimError
from ..obs import EventLog, MetricsRegistry, SLOEngine, SLOSpec, Tracer
from ..obs.sli import (
    REJECTED_US,
    REQUEST_ELEMENTS,
    TENANT_ELEMENTS,
    TENANT_LATENCY_US,
    TENANT_REJECTED_US,
)
from ..service.queue import (
    OversizeRequestError,
    QueueFullError,
    SortRequest,
)
from ..service.service import ServiceConfig
from .cache import SortCache, request_digest
from .replica import ServiceReplica
from .router import LoadBalancer
from .tenants import ScheduleTag, TenantScheduler, TenantSpec


@dataclass(frozen=True)
class ClusterConfig:
    """Everything a :class:`SortCluster` needs at construction."""

    #: Number of independent service replicas behind the front end.
    num_replicas: int = 2
    #: Configuration every replica is built from (shared — this is what
    #: makes results independent of routing).
    service: ServiceConfig = field(default_factory=ServiceConfig)
    #: Balancing policy, one of :data:`repro.cluster.router.POLICIES`.
    policy: str = "least_outstanding"
    #: Byte budget of the content-addressed result cache; 0 disables it.
    cache_capacity_bytes: int = 64 << 20
    #: Simulated cost of one front-end cache lookup/serve, in microseconds.
    cache_lookup_us: float = 0.5
    #: Tenant contracts; unknown tenants get weight 1.0, priority 0.
    tenants: tuple[TenantSpec, ...] = ()
    #: Optional per-replica shard-device lists — replica ``i`` wraps a
    #: service whose pool runs ``replica_devices[i]`` (e.g. one C1060 pool
    #: and one GTX-285 pool behind the same front end). ``None`` keeps every
    #: replica on the shared :attr:`service` pool. Every device across every
    #: replica must share one functional fingerprint, so the bytes stay
    #: routing-independent.
    replica_devices: Optional[tuple[tuple[DeviceSpec, ...], ...]] = None
    #: Simulated front-end time to route one request, in microseconds. The
    #: front end is a single serialised server: with a non-zero cost,
    #: back-to-back arrivals queue *at the balancer itself* before any
    #: replica sees them — the knob that lets the front end saturate.
    #: Either a flat per-request float or a callable
    #: ``(elements, outcome) -> float`` where ``outcome`` is ``"hit"`` (the
    #: request will be served by the cache or coalesce onto an in-flight
    #: twin) or ``"dispatch"`` (it goes to a replica) — a size- and
    #: path-dependent front end, e.g. hashing cost scaling with the payload.
    #: Default 0 keeps every pre-existing timeline unchanged.
    routing_cost_us: Union[float, Callable[[int, str], float]] = 0.0
    #: Cluster-level objectives (see :class:`repro.obs.SLOSpec`) evaluated at
    #: each drain over the front-end commit clock; tenant-scoped specs read
    #: that tenant's labelled histograms. Empty disables the SLO engine.
    slos: tuple[SLOSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "slos", tuple(self.slos))
        if self.num_replicas < 1:
            raise ValueError(
                f"num_replicas must be >= 1, got {self.num_replicas}"
            )
        if self.cache_capacity_bytes < 0:
            raise ValueError("cache_capacity_bytes must be >= 0")
        if self.cache_lookup_us < 0:
            raise ValueError("cache_lookup_us must be >= 0")
        if not callable(self.routing_cost_us) and self.routing_cost_us < 0:
            raise ValueError("routing_cost_us must be >= 0")
        if self.replica_devices is not None:
            object.__setattr__(
                self, "replica_devices",
                tuple(tuple(pool) for pool in self.replica_devices),
            )
            if len(self.replica_devices) != self.num_replicas:
                raise ValueError(
                    f"replica_devices names {len(self.replica_devices)} "
                    f"pools for {self.num_replicas} replicas"
                )

    def routing_cost_for(self, elements: int, outcome: str) -> float:
        """Resolve the front-end routing cost of one request.

        ``outcome`` is ``"hit"`` (cache hit or coalesced onto an in-flight
        twin) or ``"dispatch"`` (replica-served). Flat configurations ignore
        both arguments; callables are invoked per request and must return a
        non-negative cost.
        """
        cost_spec = self.routing_cost_us
        cost = (float(cost_spec(int(elements), outcome)) if callable(cost_spec)
                else float(cost_spec))
        if cost < 0:
            raise ValueError(
                f"routing_cost_us callable returned {cost} for "
                f"({elements}, {outcome!r}); costs must be >= 0"
            )
        return cost

    def replica_service_config(self, replica_id: int) -> ServiceConfig:
        """The :class:`ServiceConfig` replica ``replica_id`` is built from.

        Only the pool's device list may vary per replica; everything else —
        the sorter config above all — is shared, which is what keeps results
        byte-identical however the balancer routes.
        """
        if self.replica_devices is None:
            return self.service
        return replace(self.service,
                       devices=self.replica_devices[replica_id])


@dataclass
class _ClusterRequest:
    """Front-end bookkeeping for one admitted request."""

    request_id: int
    tenant: str
    keys: np.ndarray
    values: Optional[np.ndarray]
    arrival_us: float
    tag: ScheduleTag
    #: WFQ charge: predicted device microseconds on the reference device.
    cost_us: float = 0.0
    #: Content digest for the cache / coalescing map, computed exactly once
    #: at admission (None when the cluster runs without a cache). Hashing n
    #: elements is the most expensive front-end step, so the drain loop, the
    #: in-flight map and the cache fill all reuse this value.
    digest: Optional[str] = None

    @property
    def n(self) -> int:
        return int(self.keys.size)


@dataclass
class ClusterResult:
    """One request's output plus its cluster-level timeline and provenance."""

    request_id: int
    tenant: str
    keys: np.ndarray
    values: Optional[np.ndarray]
    n: int
    arrival_us: float
    dispatch_us: float
    completion_us: float
    #: ``"replica"`` (cold run), ``"cache"`` (stored hit) or ``"coalesced"``
    #: (deduplicated onto an identical in-flight request).
    source: str
    #: Which replica ran the sort (None for cache/coalesced hits).
    replica_id: Optional[int]
    #: The replica-local request id (None for cache/coalesced hits).
    service_request_id: Optional[int]
    #: Full replica queues skipped before admission (spill count).
    spill_rejections: int = 0
    #: Front-end routing time charged to this request, in microseconds (the
    #: resolved per-request value when ``routing_cost_us`` is a callable).
    routing_us: float = 0.0

    @property
    def latency_us(self) -> float:
        return self.completion_us - self.arrival_us

    @property
    def cache_hit(self) -> bool:
        return self.source in ("cache", "coalesced")


class SortCluster:
    """Replicated sort service with caching, fair queueing and spill routing.

    Telemetry lives in a :class:`repro.obs.MetricsRegistry`
    (``self.metrics``); with ``trace_mode == "spans"`` the cluster owns one
    shared :class:`repro.obs.Tracer` that every replica records into, so a
    request's spans — frontend wait, routing, cache lookups, the replica's
    queue/batch/engine subtree — land in a single exportable timeline
    (:meth:`request_span` returns the per-request root).
    """

    #: ``stats()["counts"]`` keys, in their historical render order.
    _COUNT_EVENTS = ("submitted", "completed", "replica_served", "cache_hits",
                     "coalesced_hits", "rejected_invalid",
                     "rejected_oversize", "forced_flushes")

    def __init__(self, config: Optional[ClusterConfig] = None):
        self.config = config if config is not None else ClusterConfig()
        self.metrics = MetricsRegistry()
        for event in self._COUNT_EVENTS:
            self.metrics.counter("requests", event=event)
        self.tracer = (Tracer()
                       if self.config.service.sorter.trace_mode == "spans"
                       else None)
        #: One shared, trace-gated event log for the whole cluster: front-end
        #: rejects and spills, every replica's admission bounces, cache churn
        #: and SLO transitions interleave on one sequence.
        self.events = EventLog(
            capacity=4096,
            enabled=self.config.service.sorter.trace_mode == "spans",
        )
        self._request_spans: dict[int, object] = {}
        self.replicas = [
            ServiceReplica(replica_id=i,
                           config=self.config.replica_service_config(i),
                           tracer=self.tracer, events=self.events)
            for i in range(self.config.num_replicas)
        ]
        fingerprints = {
            replica.service.pool.device.functional_fingerprint
            for replica in self.replicas
        }
        if len(fingerprints) > 1:
            # Each pool already enforces one geometry internally; replicas
            # must agree with each other too, or routing could change bytes.
            raise DeviceConfigError(
                "replica pools must share one functional fingerprint "
                "(execution geometry) so results stay routing-independent"
            )
        #: The WFQ pricing oracle: requests are charged predicted device
        #: microseconds on the cluster's reference device at admission — a
        #: routing-independent charge (which replica ends up serving is
        #: unknown, and must not matter, when the tag is assigned).
        self.cost_model = self.replicas[0].service.pool.cost_model
        self._reference_device = self.replicas[0].service.pool.device
        #: When the last front-end routing slot frees up (only advanced for a
        #: non-zero ``routing_cost_us``).
        self._frontend_busy_until = 0.0
        self._frontend_routing_us = 0.0
        self.balancer = LoadBalancer(self.config.policy)
        self.cache = (SortCache(self.config.cache_capacity_bytes,
                                events=self.events)
                      if self.config.cache_capacity_bytes > 0 else None)
        self.scheduler = TenantScheduler(self.config.tenants)
        self.slo_engine = (SLOEngine(self.config.slos, self.metrics,
                                     events=self.events)
                           if self.config.slos else None)
        self._pending: list[_ClusterRequest] = []
        self._next_request_id = 0
        self._results: dict[int, ClusterResult] = {}
        #: Requests routed to a replica but not yet collected into results —
        #: survives a failed drain so a retry can finish the work.
        self._routed: dict[tuple[int, int], tuple] = {}
        #: Coalesced twins waiting for their primary's output, same story.
        self._coalesced: list[tuple[_ClusterRequest, int, float, float]] = []

    def _count(self, event: str) -> None:
        self.metrics.counter("requests", event=event).inc()

    def _observe_rejection(self, reason: str, tenant: str, elements: int,
                           arrival_us: float) -> None:
        """Feed the rejection histograms + event log at the front door."""
        self.metrics.histogram(REJECTED_US).observe(float(elements),
                                                    at_us=arrival_us)
        self.metrics.histogram(TENANT_REJECTED_US, tenant=tenant).observe(
            float(elements), at_us=arrival_us)
        self.events.record("admission_reject", at_us=arrival_us,
                           severity="warning", layer="cluster",
                           reason=reason, tenant=tenant,
                           elements=int(elements))

    @property
    def sorter_config(self) -> SampleSortConfig:
        return self.config.service.sorter

    # ------------------------------------------------------------ submission
    def submit(self, keys: np.ndarray, values: Optional[np.ndarray] = None,
               arrival_us: float = 0.0, tenant: str = "default",
               digest: Optional[str] = None) -> int:
        """Admit one request to the front end; returns its cluster id.

        Validation happens here, once, with the same rules every replica
        applies (shape, dtype, layout, size) — an invalid request must fail at
        the front door, not mid-drain inside a replica.

        The content ``digest`` keying the result cache is likewise computed
        here, once, and carried on the request — cache lookup, in-flight
        coalescing and the cache fill after a replica run all reuse it. A
        caller that already holds the digest (a gateway that hashed the
        payload for its own dedup, a replayed request) can pass it in to
        skip the hash entirely; it must equal
        :func:`~repro.cluster.cache.request_digest` for these bytes and the
        cluster's sorter config, or cache hits would serve wrong answers.
        """
        self._count("submitted")
        try:
            validated = SortRequest(request_id=-1, keys=keys, values=values,
                                    arrival_us=float(arrival_us))
            if validated.n > self.config.service.max_request_elements:
                self._count("rejected_oversize")
                self._observe_rejection("oversize", tenant, validated.n,
                                        float(arrival_us))
                raise OversizeRequestError(
                    f"request of {validated.n} elements exceeds the admission "
                    f"limit of {self.config.service.max_request_elements}"
                )
            # The same device validation every replica would apply at its own
            # submit(): a dtype group whose sorter config cannot run on the
            # device must fail at the front door, not mid-drain in a replica.
            # Replicas share one config, so any replica's verdict is the
            # cluster's (and the service memoises it per dtype group).
            self.replicas[0].service._group_config(validated)
        except OversizeRequestError:
            raise
        except GpuSimError:
            self._count("rejected_invalid")
            self._observe_rejection("invalid", tenant,
                                    int(getattr(keys, "size", 0) or 0),
                                    float(arrival_us))
            raise
        cost_us = self.cost_model.predict_sort_us(
            validated.n, validated.keys.dtype.itemsize,
            0 if validated.values is None else validated.values.dtype.itemsize,
            self._reference_device, self.sorter_config,
        )
        if self.cache is not None and digest is None:
            digest = request_digest(validated.keys, validated.values,
                                    self.sorter_config)
        request = _ClusterRequest(
            request_id=self._next_request_id,
            tenant=tenant,
            keys=validated.keys,
            values=validated.values,
            arrival_us=float(arrival_us),
            tag=self.scheduler.admit(tenant, validated.n, cost=cost_us),
            cost_us=cost_us,
            digest=digest if self.cache is not None else None,
        )
        self._pending.append(request)
        self._next_request_id += 1
        return request.request_id

    # ------------------------------------------------------------ event loop
    def drain(self) -> dict[int, ClusterResult]:
        """Serve every pending request; returns ``{cluster id: result}``.

        Failure safety mirrors :meth:`SortService.drain`: if routing raises,
        every not-yet-routed request returns to the front-end backlog, and
        requests already routed to a replica stay tracked in the cluster's
        routed map — a later :meth:`drain` collects their results instead of
        losing them.
        """
        pending = sorted(self._pending,
                         key=lambda r: (r.arrival_us, r.tag.seq))
        self._pending = []

        ready: list[tuple[tuple, _ClusterRequest]] = []
        drained_ids: list[int] = []  # cache hits committed this drain
        inflight: dict[str, int] = {}  # digest -> primary cluster request id
        index = 0
        now = 0.0
        request: Optional[_ClusterRequest] = None

        try:
            while index < len(pending) or ready:
                if not ready:
                    now = max(now, pending[index].arrival_us)
                while (index < len(pending)
                       and pending[index].arrival_us <= now):
                    heapq.heappush(ready, (pending[index].tag.key,
                                           pending[index]))
                    index += 1

                _, request = heapq.heappop(ready)

                # ``frontend_undo`` is the rollback point: if anything in
                # this request's handling fails, the except path reverts its
                # routing charge so a retry drain does not double-book the
                # slot. Taken before any per-request work can raise.
                frontend_undo = (self._frontend_busy_until,
                                 self._frontend_routing_us)

                # The cache/coalesce outcome is resolved *before* the routing
                # charge: a callable ``routing_cost_us`` may price hits and
                # dispatches differently, so the front end must know which
                # path the request takes when it books its service time.
                # (For flat costs this reordering is unobservable — the same
                # lookups run in the same order, the charge is identical.)
                digest = None
                cached = None
                coalesce_primary: Optional[int] = None
                if self.cache is not None:
                    # hashed once at submit(); the drain loop only reuses it
                    digest = request.digest
                    if digest in inflight:
                        coalesce_primary = inflight[digest]
                    else:
                        cached = self.cache.get(digest, at_us=now)
                outcome = ("hit" if coalesce_primary is not None
                           or cached is not None else "dispatch")
                cost = self.config.routing_cost_for(request.n, outcome)

                # The front end takes ``cost`` microseconds to handle each
                # request (single serialised server): back-to-back arrivals
                # queue at the balancer before any replica sees them. The
                # guard keeps a zero cost byte-for-byte on the old timeline
                # (the busy horizon is never consulted, never advanced).
                if cost > 0:
                    routed_us = max(now, self._frontend_busy_until) + cost
                    self._frontend_busy_until = routed_us
                    self._frontend_routing_us += cost
                else:
                    routed_us = now

                if coalesce_primary is not None:
                    # An identical request is already on its way to a
                    # replica: coalesce instead of sorting the bytes twice.
                    self._coalesced.append((request, coalesce_primary,
                                            routed_us, cost))
                    self.scheduler.on_dispatch(request.tenant,
                                               request.tag, request.n,
                                               request.cost_us)
                    request = None
                    continue
                if cached is not None:
                    completion = routed_us + self.config.cache_lookup_us
                    self.scheduler.on_dispatch(request.tenant,
                                               request.tag, request.n,
                                               request.cost_us)
                    self._commit(ClusterResult(
                        request_id=request.request_id,
                        tenant=request.tenant,
                        keys=cached[0], values=cached[1], n=request.n,
                        arrival_us=request.arrival_us,
                        dispatch_us=routed_us, completion_us=completion,
                        source="cache", replica_id=None,
                        service_request_id=None, routing_us=cost,
                    ))
                    drained_ids.append(request.request_id)
                    request = None
                    continue

                replica, service_id, spills = self._dispatch(request,
                                                             routed_us)
                self.scheduler.on_dispatch(request.tenant, request.tag,
                                           request.n, request.cost_us)
                self._routed[(replica.replica_id, service_id)] = (
                    request, routed_us, spills, digest, cost
                )
                if digest is not None:
                    inflight[digest] = request.request_id
                request = None
        except BaseException:
            # Unrouted work returns to the backlog for a retry drain; the
            # tags are kept, so the schedule resumes where it stopped.
            leftovers = [entry for _, entry in ready] + pending[index:]
            if request is not None:
                leftovers.append(request)
                # The failed request's routing charge is reverted with it —
                # the retry will route (and charge) it again.
                (self._frontend_busy_until,
                 self._frontend_routing_us) = frontend_undo
            self._pending = leftovers + self._pending
            raise

        # Every request is routed; let the replicas serve their backlogs.
        for replica in self.replicas:
            replica.drain()

        # Collect replica outputs (flush drains mid-loop and survivors of a
        # previously failed drain landed in results() too), fill the cache,
        # then resolve coalesced requests against their primaries.
        for key in list(self._routed):
            replica_id, service_id = key
            service_result = self.replicas[replica_id].result(service_id)
            if service_result is None:
                continue  # still stuck in the replica; a later drain retries
            request, dispatch_us, spills, digest, routing_us = \
                self._routed.pop(key)
            self._commit(ClusterResult(
                request_id=request.request_id,
                tenant=request.tenant,
                keys=service_result.keys,
                values=service_result.values,
                n=request.n,
                arrival_us=request.arrival_us,
                dispatch_us=dispatch_us,
                completion_us=service_result.completion_us,
                source="replica",
                replica_id=replica_id,
                service_request_id=service_id,
                spill_rejections=spills,
                routing_us=routing_us,
            ))
            drained_ids.append(request.request_id)
            if digest is not None:
                self.cache.put(digest, service_result.keys,
                               service_result.values,
                               at_us=service_result.completion_us)

        unresolved: list[tuple[_ClusterRequest, int, float, float]] = []
        for request, primary_id, routed_at, routing_us in self._coalesced:
            primary = self._results.get(primary_id)
            if primary is None:
                unresolved.append((request, primary_id, routed_at, routing_us))
                continue
            completion = (max(routed_at, primary.completion_us)
                          + self.config.cache_lookup_us)
            values = (None if primary.values is None
                      else primary.values.copy())
            self._commit(ClusterResult(
                request_id=request.request_id,
                tenant=request.tenant,
                keys=primary.keys.copy(), values=values, n=request.n,
                arrival_us=request.arrival_us,
                dispatch_us=routed_at, completion_us=completion,
                source="coalesced", replica_id=None,
                service_request_id=None, routing_us=routing_us,
            ))
            drained_ids.append(request.request_id)
        self._coalesced = unresolved

        self._evaluate_slos([self._results[request_id]
                             for request_id in drained_ids])
        return {request_id: self._results[request_id]
                for request_id in sorted(drained_ids)}

    def _evaluate_slos(self, results) -> None:
        """Advance the SLO engine through this drain's completion times.

        Evaluation points are the sorted completion timestamps of the
        drained results — a pure function of the results themselves, so
        commit order and launch tie-breaking cannot change which alert
        transitions fire. Timestamps behind the engine's clock (overlap from
        an earlier drain) fold into later windows.
        """
        if self.slo_engine is None or not results:
            return
        floor = self.slo_engine.last_evaluated_us
        for at_us in sorted({r.completion_us for r in results}):
            if floor is None or at_us >= floor:
                self.slo_engine.evaluate(at_us)

    def _dispatch(self, request: _ClusterRequest, now: float
                  ) -> tuple[ServiceReplica, int, int]:
        """Balance the request across replicas, flushing instead of rejecting.

        When every replica queue is full, the cluster drains the replicas
        (their backlogs become results, their clocks advance) and retries —
        the front end converts backpressure into latency, not errors.
        """
        try:
            return self.balancer.dispatch(self.replicas, request.keys,
                                          request.values, arrival_us=now)
        except QueueFullError:
            self._count("forced_flushes")
            self.events.record(
                "forced_flush", at_us=now, severity="critical",
                layer="cluster", tenant=request.tenant,
                request_id=request.request_id,
                replicas=len(self.replicas),
            )
            for replica in self.replicas:
                replica.drain()
            replica, service_id, retry_spills = self.balancer.dispatch(
                self.replicas, request.keys, request.values, arrival_us=now
            )
            # the first attempt bounced off every queue; the result's spill
            # count must say so even though the retry landed cleanly
            return replica, service_id, retry_spills + len(self.replicas)

    def _commit(self, result: ClusterResult) -> None:
        self._results[result.request_id] = result
        self._count("completed")
        self._count({
            "replica": "replica_served",
            "cache": "cache_hits",
            "coalesced": "coalesced_hits",
        }[result.source])
        # Latency and element count are observed back to back with the same
        # completion timestamp (cluster-wide and tenant-scoped), so SLI
        # windows see them zip-aligned for goodput weighting.
        at_us = result.completion_us
        self.metrics.histogram("latency_us").observe(result.latency_us,
                                                     at_us=at_us)
        self.metrics.histogram(REQUEST_ELEMENTS).observe(float(result.n),
                                                         at_us=at_us)
        self.metrics.histogram(TENANT_LATENCY_US,
                               tenant=result.tenant).observe(result.latency_us,
                                                             at_us=at_us)
        self.metrics.histogram(TENANT_ELEMENTS,
                               tenant=result.tenant).observe(float(result.n),
                                                             at_us=at_us)
        if self.tracer is not None:
            self._emit_request_spans(result)
        if result.spill_rejections:
            root = self._request_spans.get(result.request_id)
            self.events.record(
                "spill", at_us=at_us, severity="warning", layer="cluster",
                trace_id=None if root is None else root.trace_id,
                tenant=result.tenant, request_id=result.request_id,
                rejections=result.spill_rejections,
                replica_id=result.replica_id,
            )

    def _emit_request_spans(self, result: ClusterResult) -> None:
        """Record the cluster-level span tree of one committed request.

        The ``request`` root (frontend process lane) is tiled by
        ``frontend_wait`` → ``route`` segments up to the routing decision at
        ``dispatch_us``; from there a replica-served request adopts the
        service's own ``request`` span as its execution segment, while cache
        and coalesced hits close with a front-end-only segment.
        """
        tracer = self.tracer
        root = tracer.span(
            "request", layer="cluster",
            start_us=result.arrival_us, end_us=result.completion_us,
            request_id=result.request_id, tenant=result.tenant, n=result.n,
            source=result.source,
            lane=f"request {result.request_id}", pid_label="frontend",
        )
        routed_us = result.dispatch_us
        # The route segment is this request's resolved front-end service
        # time; with a zero routing cost it collapses to a zero-width marker
        # at dispatch.
        picked_us = min(routed_us,
                        max(result.arrival_us,
                            routed_us - result.routing_us))
        tracer.span("frontend_wait", layer="cluster",
                    start_us=result.arrival_us, end_us=picked_us,
                    parent=root, kind="segment")
        tracer.span("route", layer="cluster",
                    start_us=picked_us, end_us=routed_us,
                    parent=root, kind="segment",
                    routing_cost_us=result.routing_us)
        if result.source == "cache":
            tracer.span("cache_lookup", layer="cluster",
                        start_us=routed_us, end_us=result.completion_us,
                        parent=root, kind="segment",
                        cache_lookup_us=self.config.cache_lookup_us)
        elif result.source == "coalesced":
            tracer.span("coalesced_wait", layer="cluster",
                        start_us=routed_us, end_us=result.completion_us,
                        parent=root, kind="segment",
                        cache_lookup_us=self.config.cache_lookup_us)
        else:
            service_span = self.replicas[result.replica_id].service \
                .request_span(result.service_request_id)
            if service_span is not None:
                tracer.adopt(service_span, root, kind="segment")
        self._request_spans[result.request_id] = root

    def request_span(self, request_id: int):
        """The cluster-level ``request`` root span of one completed request,
        or ``None`` (not completed, or tracing off)."""
        return self._request_spans.get(request_id)

    # ------------------------------------------------------------- telemetry
    def results(self) -> dict[int, ClusterResult]:
        """Every completed request so far, across drains."""
        return dict(self._results)

    def stats(self) -> dict:
        """Cluster-level telemetry merged from every replica's ``stats()``.

        Invariants the tests pin down: ``counts.completed`` equals
        ``replica_served + cache_hits + coalesced_hits``, and
        ``replica_served`` equals the sum of per-replica completed counts.
        """
        results = list(self._results.values())
        replica_stats = [replica.stats() for replica in self.replicas]
        counts = {event: self.metrics.counter("requests", event=event).value
                  for event in self._COUNT_EVENTS}
        snapshot: dict = {
            "counts": counts,
            "num_replicas": len(self.replicas),
            "balancer": self.balancer.stats(),
            "cache": None if self.cache is None else self.cache.stats(),
            "cache_hit_rate": (
                (counts["cache_hits"] + counts["coalesced_hits"])
                / counts["completed"]
                if counts["completed"] else 0.0
            ),
            "spill_count": self.balancer.stats()["spilled_requests"],
            "frontend": {
                # Always a float: downstream reports compare it numerically.
                # For callable pricing, report the observed mean per request.
                "routing_cost_us": (
                    self._frontend_routing_us / counts["completed"]
                    if callable(self.config.routing_cost_us)
                    and counts["completed"]
                    else 0.0 if callable(self.config.routing_cost_us)
                    else float(self.config.routing_cost_us)
                ),
                "routing_policy": ("callable"
                                   if callable(self.config.routing_cost_us)
                                   else "fixed"),
                "routing_us_total": self._frontend_routing_us,
                "busy_until_us": self._frontend_busy_until,
            },
        }

        if results:
            makespan_us = (max(r.completion_us for r in results)
                           - min(r.arrival_us for r in results))
            total_elements = sum(r.n for r in results)
            # The cluster latency histogram is observed at _commit, in
            # results-insertion order — the same floats, in the same order,
            # the ad-hoc array math historically percentiled.
            latency = self.metrics.histogram("latency_us").snapshot(
                percentiles=(50, 95, 99))
            snapshot["latency_us"] = {
                "p50": latency["p50"],
                "p95": latency["p95"],
                "p99": latency["p99"],
                "mean": latency["mean"],
                "max": latency["max"],
            }
            snapshot["throughput"] = {
                "makespan_us": makespan_us,
                "elements_per_us": (total_elements / makespan_us
                                    if makespan_us > 0 else 0.0),
                "requests_per_ms": (1e3 * len(results) / makespan_us
                                    if makespan_us > 0 else 0.0),
            }
        else:
            makespan_us = 0.0
            snapshot["latency_us"] = {"p50": 0.0, "p95": 0.0, "p99": 0.0,
                                      "mean": 0.0, "max": 0.0}
            snapshot["throughput"] = {"makespan_us": 0.0,
                                      "elements_per_us": 0.0,
                                      "requests_per_ms": 0.0}

        # Per-tenant: scheduler credit accounting + completed latencies from
        # the per-tenant histograms (observed at _commit, in commit order).
        tenants = self.scheduler.stats()["tenants"]
        for name, entry in tenants.items():
            hist = self.metrics.get("tenant_latency_us", tenant=name)
            summary = (hist.snapshot(percentiles=(50, 95, 99))
                       if hist is not None
                       else {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
                             "max": 0.0})
            entry["completed"] = summary["count"]
            entry["latency_us"] = {
                "p50": summary["p50"],
                "p95": summary["p95"],
                "p99": summary["p99"],
                "max": summary["max"],
            }
        snapshot["tenants"] = tenants

        # Per-replica: served counts plus device occupancy over the cluster
        # makespan (sum of stream busy time / (shards * makespan)).
        replicas = []
        for stats in replica_stats:
            stream_us = sum(s["stream_time_us"] for s in stats["shards"])
            replicas.append({
                "replica_id": stats["replica_id"],
                "devices": stats["devices"],
                "heterogeneous_pool": stats["heterogeneous_pool"],
                "routed_requests": stats["routed_requests"],
                "completed": stats["counts"]["completed"],
                "sharded_requests": stats["counts"]["sharded_requests"],
                "batches": stats["batches"],
                "queue_depth_peak": stats["queue_depth_peak"],
                "stream_time_us": stream_us,
                "busy_until_us": max(s["busy_until_us"]
                                     for s in stats["shards"]),
                "occupancy": (stream_us
                              / (stats["num_shards"] * makespan_us)
                              if makespan_us > 0 else 0.0),
            })
        snapshot["replicas"] = replicas
        replica_utils = [s.get("utilization") for s in replica_stats]
        replica_utils = [u for u in replica_utils if u]
        if replica_utils:
            # Replicas are distinct devices, so their slots genuinely add up
            # (the default merge); busy/idle/saturated slot-cycles and the
            # per-phase tables sum across the whole fleet.
            snapshot["utilization"] = merge_utilization(replica_utils)
        return snapshot

    def health_snapshot(self) -> dict:
        """Operator-facing health view: SLO status, budgets, recent trouble.

        A separate method from :meth:`stats` on purpose — the stats dict is
        pinned byte-identical across trace modes, while this view carries
        the SLO engine's judgement, the event log's tallies and per-replica
        occupancy (predicted device time over the wall window, so pipelined
        launch overlap can push a saturated replica above 1.0). Renders with
        :func:`repro.harness.format_health_report`.
        """
        results = list(self._results.values())
        now_us = max((r.completion_us for r in results), default=0.0)
        makespan_us = (now_us - min(r.arrival_us for r in results)
                       if results else 0.0)
        occupancy = []
        for replica in self.replicas:
            shards = replica.service.pool.shards
            stream_us = sum(s.stream.busy_us for s in shards)
            occupancy.append({
                "id": f"replica {replica.replica_id}",
                "device": "+".join(replica.device_names),
                "busy_us": stream_us,
                "occupancy": (stream_us / (len(shards) * makespan_us)
                              if makespan_us > 0 else 0.0),
            })
        return {
            "layer": "cluster",
            "now_us": now_us,
            "slos": (self.slo_engine.status()
                     if self.slo_engine is not None else []),
            "slo_transitions": (self.slo_engine.transitions()
                                if self.slo_engine is not None else []),
            "events": self.events.stats(),
            "recent_events": [e.as_dict() for e in
                              self.events.recent(8, min_severity="warning")],
            "counts": {event:
                       self.metrics.counter("requests", event=event).value
                       for event in self._COUNT_EVENTS},
            "pending_requests": len(self._pending),
            "cache": None if self.cache is None else self.cache.stats(),
            "occupancy": occupancy,
        }


__all__ = ["ClusterConfig", "ClusterResult", "SortCluster"]
