"""Service replicas: independent :class:`SortService` instances behind one front end.

A :class:`ServiceReplica` is one complete serving stack — its own bounded
queue, micro-batcher, :class:`~repro.service.shards.ShardPool` and simulated
clock (the per-shard stream horizons). Replicas share nothing but their
configuration, which is exactly what keeps routing irrelevant to results:
every replica is built from the *same* :class:`ServiceConfig`, so the sorter
seed — and with it the sampled splitters, the recursion tree and every tie
permutation — is a pure function of the request bytes, never of the replica
that happened to serve it. Any replica's answer is byte-identical to a solo
:meth:`SampleSorter.sort` of the same input.

The replica exposes the load signals the front-end balancer routes on
(:attr:`pending_requests`, :attr:`pending_elements`) and forwards admission
errors (:class:`QueueFullError`) unchanged so the router can spill to a
sibling.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..service.service import ServiceConfig, ServiceResult, SortService


class ServiceReplica:
    """One :class:`SortService` with an identity and front-end load hooks.

    ``tracer`` optionally hands the replica's service a shared
    :class:`repro.obs.Tracer` (the cluster passes one tracer to every replica
    so request spans land in a single timeline); the replica labels its spans'
    Perfetto process lane ``"replica N"``. ``events`` likewise shares the
    cluster's :class:`repro.obs.EventLog`, so replica-level admission rejects
    land in the same stream as front-end spills and SLO transitions.
    """

    def __init__(self, replica_id: int, config: Optional[ServiceConfig] = None,
                 tracer=None, events=None):
        self.replica_id = replica_id
        self.service = SortService(config, tracer=tracer,
                                   pid_label=f"replica {replica_id}",
                                   events=events)
        #: Requests routed here by the front end (includes spilled-in ones).
        self.routed_requests = 0

    # ------------------------------------------------------------- serving
    def submit(self, keys: np.ndarray, values: Optional[np.ndarray] = None,
               arrival_us: float = 0.0) -> int:
        """Admit one request; returns the replica-local request id.

        Raises the service's admission errors unchanged — the front end
        treats :class:`QueueFullError` as a spill signal.
        """
        request_id = self.service.submit(keys, values, arrival_us=arrival_us)
        self.routed_requests += 1
        return request_id

    def drain(self) -> dict[int, ServiceResult]:
        """Serve everything pending, advancing this replica's clock."""
        return self.service.drain()

    def results(self) -> dict[int, ServiceResult]:
        return self.service.results()

    def result(self, request_id: int) -> Optional[ServiceResult]:
        return self.service.result(request_id)

    # --------------------------------------------------------- load signals
    @property
    def pending_requests(self) -> int:
        return self.service.pending_requests

    @property
    def pending_elements(self) -> int:
        return self.service.pending_elements

    @property
    def pending_predicted_us(self) -> float:
        """Predicted time for this replica's pool to drain its backlog.

        The device-aware routing signal: two replicas holding the same
        elements quote different drains when their pools differ (a GTX-285
        pool drains faster than a C1060 pool), which is what the balancer's
        predicted-drain ranking consumes.
        """
        return self.service.pending_predicted_us

    @property
    def queue_capacity(self) -> int:
        return self.service.queue_capacity

    @property
    def device_names(self) -> list[str]:
        """The replica pool's device names, in shard order."""
        return [d.name for d in self.service.pool.devices]

    # ------------------------------------------------------------ telemetry
    def stats(self) -> dict:
        snapshot = self.service.stats()
        snapshot["replica_id"] = self.replica_id
        snapshot["routed_requests"] = self.routed_requests
        return snapshot


__all__ = ["ServiceReplica"]
