"""Multi-tenant scheduling: priority classes + weighted fair queueing.

The cluster front end orders ready requests *before* replica dispatch with a
two-level rule:

1. **priority class** — strict: a class-0 (most urgent) request always
   dispatches before a class-1 request that is ready at the same instant;
2. **weighted fair queueing** within a class — start-time fair queueing over
   a service *cost*: each tenant accumulates a virtual *finish* time that
   grows by ``cost / weight`` per request, and requests dispatch in order of
   their virtual **start** tags. The cost defaults to the element count (the
   historical currency) but the cluster charges **predicted device
   microseconds** from the shared cost model, so a tenant burning slow
   devices or expensive dtypes pays what it actually consumes. A tenant with
   weight 3 gets three microseconds of device time for every microsecond a
   weight-1 competitor gets whenever both have work ready, while an idle
   tenant's tag snaps forward to the global virtual time on its next request
   (no credit hoarding: you cannot bank service you never asked for).

Ties (same class, same tag) break on submission order, so the schedule is
deterministic.

The scheduler also keeps per-tenant credit accounting — elements requested,
elements dispatched, and the virtual clock positions — which the cluster's
telemetry merges with per-tenant latency percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's scheduling contract."""

    name: str
    #: WFQ weight: relative share of service among tenants of the same
    #: priority class with work ready. Must be positive.
    weight: float = 1.0
    #: Priority class, lower is more urgent; classes are strict (class 0
    #: drains before class 1 regardless of weights).
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not (self.weight > 0):
            raise ValueError(
                f"tenant weight must be > 0, got {self.weight} for "
                f"{self.name!r}"
            )


@dataclass(frozen=True)
class ScheduleTag:
    """Dispatch-ordering key of one admitted request (smaller first)."""

    priority: int
    virtual_start: float
    seq: int

    @property
    def key(self) -> tuple:
        return (self.priority, self.virtual_start, self.seq)


class TenantScheduler:
    """Assigns :class:`ScheduleTag` s and keeps WFQ credit accounting."""

    DEFAULT_TENANT = "default"

    def __init__(self, tenants: Iterable[TenantSpec] = (),
                 default_spec: Optional[TenantSpec] = None):
        self._specs: dict[str, TenantSpec] = {}
        self._default = default_spec or TenantSpec(self.DEFAULT_TENANT)
        for spec in tenants:
            self.register(spec)
        #: Global virtual time: advances to the virtual start of each
        #: dispatched request (monotone because dispatch follows tag order
        #: within a class).
        self._virtual_time = 0.0
        self._finish: dict[str, float] = {}
        self._seq = 0
        self._accounts: dict[str, dict] = {}

    def register(self, spec: TenantSpec) -> None:
        self._specs[spec.name] = spec

    def spec(self, name: str) -> TenantSpec:
        """The tenant's spec; unknown tenants get the default contract."""
        existing = self._specs.get(name)
        if existing is not None:
            return existing
        spec = TenantSpec(name=name, weight=self._default.weight,
                          priority=self._default.priority)
        self._specs[name] = spec
        return spec

    # ---------------------------------------------------------- scheduling
    def admit(self, tenant: str, elements: int,
              cost: Optional[float] = None) -> ScheduleTag:
        """Tag one request of ``elements`` elements for tenant ``tenant``.

        ``cost`` is the WFQ service charge the virtual clock advances by —
        predicted device microseconds when the cluster prices requests
        through its cost model, or simply the element count when omitted.
        Must be called in submission order; the tag is the request's
        dispatch-ordering key for the cluster's event loop.
        """
        spec = self.spec(tenant)
        charge = float(elements if cost is None else cost)
        if charge < 0:
            raise ValueError(f"WFQ cost must be >= 0, got {charge}")
        account = self._accounts.setdefault(tenant, {
            "requests": 0, "elements": 0, "cost": 0.0,
            "dispatched_requests": 0, "dispatched_elements": 0,
            "dispatched_cost": 0.0,
        })
        start = max(self._virtual_time, self._finish.get(tenant, 0.0))
        self._finish[tenant] = start + charge / spec.weight
        tag = ScheduleTag(priority=spec.priority, virtual_start=start,
                          seq=self._seq)
        self._seq += 1
        account["requests"] += 1
        account["elements"] += elements
        account["cost"] += charge
        return tag

    def on_dispatch(self, tenant: str, tag: ScheduleTag, elements: int,
                    cost: Optional[float] = None) -> None:
        """Advance the virtual clock and the tenant's served credit."""
        self._virtual_time = max(self._virtual_time, tag.virtual_start)
        account = self._accounts[tenant]
        account["dispatched_requests"] += 1
        account["dispatched_elements"] += elements
        account["dispatched_cost"] += float(elements if cost is None else cost)

    # ------------------------------------------------------------ telemetry
    def stats(self) -> dict:
        tenants = {}
        for name, account in sorted(self._accounts.items()):
            spec = self.spec(name)
            tenants[name] = {
                "weight": spec.weight,
                "priority": spec.priority,
                "virtual_finish": self._finish.get(name, 0.0),
                **account,
            }
        return {"virtual_time": self._virtual_time, "tenants": tenants}


__all__ = ["TenantSpec", "ScheduleTag", "TenantScheduler"]
