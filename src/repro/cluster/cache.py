"""Content-addressed result cache for repeated sort requests.

A sort is a pure function of ``(key bytes, key dtype, value bytes, value
dtype, sorter configuration)``; :class:`SortCache` addresses results by a
SHA-256 digest of exactly that tuple, so two requests hit the same entry iff a
cold run would produce byte-identical output for both. The cache stores the
*sorted* arrays (private copies) under an LRU policy bounded by a byte budget,
and :meth:`get` hands back fresh copies — a caller mutating a served result
can never corrupt later hits, which is what makes the byte-identity guarantee
("a cache hit equals a cold run") unconditional.

Telemetry (:meth:`stats`): hits, misses, insertions, evictions, rejections of
entries larger than the whole budget, current/capacity bytes, the hit rate,
and the byte ledger (admitted/evicted/replaced bytes) whose invariant
``current_bytes == admitted_bytes - evicted_bytes - replaced_bytes`` the
tests assert. With an :class:`repro.obs.events.EventLog` attached, cache
churn additionally lands in the structured event stream (``cache_admit`` /
``cache_evict`` / ``cache_oversize``) at the simulated timestamps the caller
passes to :meth:`get` / :meth:`put`.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.config import SampleSortConfig
from ..obs.events import EventLog


def request_digest(keys: np.ndarray, values: Optional[np.ndarray],
                   config: SampleSortConfig) -> str:
    """Content address of one sort request.

    Covers the key bytes *and* dtype (the same bytes as uint32 and float32
    sort differently), the optional value payload, and the full sorter
    configuration (different splitter seeds or thresholds produce different
    tie permutations, so they must not share an entry).
    """
    hasher = hashlib.sha256()
    hasher.update(str(keys.dtype).encode())
    hasher.update(str(keys.size).encode())
    hasher.update(np.ascontiguousarray(keys).tobytes())
    if values is None:
        hasher.update(b"|no-values")
    else:
        hasher.update(b"|values:" + str(values.dtype).encode())
        hasher.update(np.ascontiguousarray(values).tobytes())
    hasher.update(b"|config:" + repr(config).encode())
    return hasher.hexdigest()


@dataclass
class _CacheEntry:
    keys: np.ndarray
    values: Optional[np.ndarray]

    @property
    def nbytes(self) -> int:
        return self.keys.nbytes + (0 if self.values is None
                                   else self.values.nbytes)


class SortCache:
    """LRU cache of sorted outputs under a byte budget.

    ``events`` is an optional :class:`repro.obs.events.EventLog` the cache
    reports admissions, evictions and oversize rejections into (the cluster
    passes its shared, trace-gated log); telemetry in :meth:`stats` is
    recorded unconditionally either way.
    """

    def __init__(self, capacity_bytes: int = 64 << 20,
                 events: Optional[EventLog] = None):
        if capacity_bytes < 1:
            raise ValueError(
                f"cache capacity must be >= 1 byte, got {capacity_bytes} "
                f"(disable the cache at the cluster level instead)"
            )
        self.capacity_bytes = int(capacity_bytes)
        self.events = events
        self._entries: "OrderedDict[str, _CacheEntry]" = OrderedDict()
        self._bytes = 0
        self._counts = {
            "hits": 0,
            "misses": 0,
            "insertions": 0,
            "evictions": 0,
            "oversize_rejected": 0,
            "admitted_bytes": 0,
            "evicted_bytes": 0,
            "replaced_bytes": 0,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    @property
    def current_bytes(self) -> int:
        return self._bytes

    # ------------------------------------------------------------------ ops
    def get(self, digest: str, at_us: float = 0.0
            ) -> Optional[tuple[np.ndarray, Optional[np.ndarray]]]:
        """Sorted ``(keys, values)`` copies for ``digest``, or ``None``.

        A hit refreshes the entry's LRU position and is counted; so is a
        miss. ``at_us`` timestamps any events this lookup emits.
        """
        entry = self._entries.get(digest)
        if entry is None:
            self._counts["misses"] += 1
            return None
        self._entries.move_to_end(digest)
        self._counts["hits"] += 1
        values = None if entry.values is None else entry.values.copy()
        return entry.keys.copy(), values

    def put(self, digest: str, keys: np.ndarray,
            values: Optional[np.ndarray], at_us: float = 0.0) -> bool:
        """Insert one sorted result; returns whether it was cached.

        The arrays are copied in (the caller keeps handing its arrays to the
        requester). An entry larger than the whole budget is rejected — before
        any copying — rather than evicting everything for a result that would
        be evicted next. A re-insert under an existing digest refreshes the
        entry. ``at_us`` timestamps the admit/evict events.
        """
        nbytes = keys.nbytes + (0 if values is None else values.nbytes)
        if nbytes > self.capacity_bytes:
            self._counts["oversize_rejected"] += 1
            if self.events is not None:
                self.events.record(
                    "cache_oversize", at_us=at_us, severity="warning",
                    layer="cache", digest=digest, nbytes=nbytes,
                    capacity_bytes=self.capacity_bytes,
                )
            return False
        entry = _CacheEntry(
            keys=np.ascontiguousarray(keys).copy(),
            values=None if values is None
            else np.ascontiguousarray(values).copy(),
        )
        previous = self._entries.pop(digest, None)
        if previous is not None:
            self._bytes -= previous.nbytes
            self._counts["replaced_bytes"] += previous.nbytes
        while self._bytes + entry.nbytes > self.capacity_bytes:
            evicted_digest, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
            self._counts["evictions"] += 1
            self._counts["evicted_bytes"] += evicted.nbytes
            if self.events is not None:
                self.events.record(
                    "cache_evict", at_us=at_us, severity="info",
                    layer="cache", digest=evicted_digest,
                    nbytes=evicted.nbytes, for_digest=digest,
                )
        self._entries[digest] = entry
        self._bytes += entry.nbytes
        self._counts["insertions"] += 1
        self._counts["admitted_bytes"] += entry.nbytes
        if self.events is not None:
            self.events.record(
                "cache_admit", at_us=at_us, severity="info", layer="cache",
                digest=digest, nbytes=entry.nbytes,
                current_bytes=self._bytes, replaced=previous is not None,
            )
        return True

    # ------------------------------------------------------------ telemetry
    def stats(self) -> dict:
        lookups = self._counts["hits"] + self._counts["misses"]
        return {
            **self._counts,
            "entries": len(self._entries),
            "current_bytes": self._bytes,
            "capacity_bytes": self.capacity_bytes,
            "hit_rate": (self._counts["hits"] / lookups) if lookups else 0.0,
        }


__all__ = ["SortCache", "request_digest"]
