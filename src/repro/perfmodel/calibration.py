"""Calibration constants for the analytic performance model.

The analytic model converts counted work (bytes, instructions, kernels) into
predicted device time. Peak hardware rates alone would predict times several
times faster than any 2009-era sorting code achieved — those codes were bound
by memory latency, instruction-issue inefficiency, synchronisation and
per-transaction overheads rather than by peak bandwidth or peak ALU throughput.
The :class:`Calibration` dataclass therefore carries a single set of
*effective-throughput* parameters, shared by **all** algorithms, fitted once so
that the predicted absolute sorting rates land in the range the paper reports
for the Tesla C1060. Relative differences between algorithms are *not* fitted:
they follow from the per-algorithm operation counts in
:mod:`repro.perfmodel.operations`.

The per-algorithm instruction constants below (traversal, merge, radix, ...)
are derived from the kernels of the reproduction itself (and sanity-checked
against the instruction counts the functional simulator measures); they are not
free fitting knobs.

Fitting procedure (documented for reproducibility): predicted rates for
uniform 32-bit key-value pairs at n = 2^23 on the Tesla C1060 preset were
compared against the Figure 3 values (cudpp radix ~ 135, thrust radix ~ 120,
sample ~ 95, thrust merge ~ 57 elements/us) and the three effective-throughput
scalars (`effective_bandwidth_fraction`, `effective_instruction_fraction`,
`scatter_inflation`) were adjusted to minimise the maximum relative error of
those four points; everything else is untouched. `EXPERIMENTS.md` reports the
resulting paper-vs-model numbers for every figure.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Calibration:
    """Effective-throughput and per-operation constants of the analytic model."""

    # ----------------------------------------------------- shared throughputs
    #: Fraction of the measured streaming bandwidth sorting kernels sustain.
    effective_bandwidth_fraction: float = 0.42
    #: Fraction of the peak scalar-instruction rate sorting kernels sustain.
    effective_instruction_fraction: float = 0.10
    #: Bytes-issued multiplier for scattered (uncoalesced) traffic.
    scatter_inflation: float = 4.0
    #: Fixed cost per kernel launch, in microseconds.
    kernel_overhead_us: float = 6.0
    #: Number of resident elements needed to keep the chip busy; smaller inputs
    #: see proportionally lower throughput (the rising left edge of every
    #: figure in the paper).
    saturation_elements: int = 1 << 21
    #: Shared-memory bytes are charged as this many equivalent instructions per
    #: 4-byte word.
    shared_word_instr: float = 1.0

    # ------------------------------------------------ per-operation constants
    #: Instructions per compare-exchange of a sorting network.
    network_instr_per_compare: float = 4.0
    #: Instructions per element for shared-memory atomic bucket counting.
    atomic_instr: float = 4.0
    #: Instructions per element for Phase-4 local-rank bookkeeping.
    scatter_rank_instr: float = 7.0
    #: Instructions per element per quicksort partition level.
    quicksort_partition_instr: float = 25.0
    #: Base instructions per element per merge pass (on top of the log2 search).
    merge_base_instr: float = 6.0
    #: (histogram, scatter) instructions per element per radix pass.
    radix_cudpp_instr: tuple[float, float] = (4.0, 6.0)
    radix_thrust_instr: tuple[float, float] = (6.0, 10.0)
    #: Fraction of radix scatter traffic that remains effectively scattered
    #: after the shared-memory local sort (scaled by digit run length).
    radix_scatter_scatter_fraction: float = 1.0
    #: Instructions per element of the linear bucket projection (hybrid/bbsort).
    projection_instr: float = 6.0
    #: How much worse than the average bucket the largest bucket of a
    #: uniformity-assuming partitioner is, relative to the measured skew.
    skew_amplification: float = 4.0
    #: Multiplier on sample sort's instruction count for already-sorted inputs
    #: (the paper's reported mild worst case).
    sample_sorted_penalty: float = 1.15
    #: Multiplier on the per-bucket small-sort cost of the uniformity-assuming
    #: sorters (hybrid, bbsort): their published small sorters (single-warp
    #: merge phases, globally synchronised bitonic steps) retire far fewer
    #: useful comparisons per cycle than sample sort's odd-even network.
    uniform_small_sort_factor: float = 3.0
    #: Extra instruction-work factor of the Thrust radix sort's wide-key (64-bit)
    #: path: two-word digit extraction, halved shared-memory tiles and register
    #: pressure roughly double the per-pass cost beyond the doubled pass count,
    #: which is what the paper measures in Figure 4.
    radix_wide_key_penalty: float = 1.6

    def with_(self, **kwargs) -> "Calibration":
        """Copy with selected constants replaced (for sensitivity studies)."""
        return replace(self, **kwargs)


#: The calibration used throughout the repository.
DEFAULT_CALIBRATION = Calibration()


class CalibrationLedger:
    """Observed simulated-us per model-us, kept per device name.

    The analytic model's *relative* ranking between devices is trustworthy,
    but its absolute scale can drift differently per device class (a GTX-285
    shard saturates at different batch sizes than a C1060 shard). The ledger
    records ``(model_us, actual_us)`` pairs keyed by
    :attr:`~repro.gpu.device.DeviceSpec.name` and answers with the
    device-specific ratio when that device has history, the pooled global
    ratio when it does not, and ``1.0`` before any history exists. It is a
    pure accumulator — deterministic for a given sequence of records — so
    callers that need rollback safety simply rebuild it from their own
    authoritative state instead of mutating one long-lived instance.
    """

    def __init__(self) -> None:
        self._model_us: dict[str, float] = {}
        self._actual_us: dict[str, float] = {}

    def record(self, device_name: str, model_us: float,
               actual_us: float) -> None:
        """Add one observation of modelled vs simulated time for a device."""
        self._model_us[device_name] = (
            self._model_us.get(device_name, 0.0) + float(model_us)
        )
        self._actual_us[device_name] = (
            self._actual_us.get(device_name, 0.0) + float(actual_us)
        )

    def global_ratio(self) -> float:
        """Pooled actual/model ratio over every device (1.0 without history)."""
        model = sum(self._model_us.values())
        actual = sum(self._actual_us.values())
        if model <= 0 or actual <= 0:
            return 1.0
        return actual / model

    def ratio(self, device_name: str | None = None) -> float:
        """Calibration ratio for one device, falling back to the global one.

        A device "has samples" only when both its accumulated model and
        actual time are positive — a shard that was assigned work but has not
        completed any (or vice versa) cannot yield a meaningful ratio and
        uses the pooled fallback, exactly like an unseen device.
        """
        if device_name is None:
            return self.global_ratio()
        model = self._model_us.get(device_name, 0.0)
        actual = self._actual_us.get(device_name, 0.0)
        if model <= 0 or actual <= 0:
            return self.global_ratio()
        return actual / model


__all__ = ["Calibration", "CalibrationLedger", "DEFAULT_CALIBRATION"]
