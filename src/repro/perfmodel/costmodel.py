"""The shared device-cost interface every scheduling layer consults.

Before this module existed, each layer of the serving stack priced work in
its own currency: the shard pool counted stream horizons, the request
splitter counted elements, and the cluster's fair queueing charged element
counts. None of those currencies know that a GTX 285 moves bytes 1.7x faster
than a Tesla C1060 — the paper's whole Figure-6 axis. :class:`DeviceCostModel`
is the one interface that converts *(n, dtype, config, device)* into predicted
microseconds, so that

* :meth:`~repro.service.shards.ShardPool.least_loaded` can rank shards by
  predicted **completion time** instead of bare availability,
* :func:`~repro.service.shards.plan_shard_assignment` can split an oversized
  request proportionally to predicted device **throughput**,
* the cluster router can rank replicas by predicted **drain time**, and
* the tenant scheduler can charge predicted device **microseconds** instead of
  elements.

:class:`AnalyticCostModel` is the default implementation, backed by the
existing :class:`~repro.perfmodel.model.AnalyticTimeModel` (the closed-form
sample-sort work counts plus the shared effective-throughput calibration), so
scheduling predictions and the figure-regeneration pipeline can never drift
apart. Predictions guide *placement only*: execution time on a shard is still
the functional simulator's traced time, which is what makes the per-shard
"model vs simulated" telemetry an honest accuracy check of this model.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence, runtime_checkable

from ..core.config import SampleSortConfig
from ..gpu.device import DeviceSpec
from .calibration import Calibration, DEFAULT_CALIBRATION
from .model import AnalyticTimeModel


@runtime_checkable
class DeviceCostModel(Protocol):
    """Predicts the device time of one sort — the scheduling currency.

    Any object with this method can drive the pool, router and tenant
    scheduler; :class:`AnalyticCostModel` is the production implementation
    and the tests substitute constant models to pin scheduling decisions.
    """

    def predict_sort_us(self, n: int, key_bytes: int, value_bytes: int,
                        device: DeviceSpec,
                        config: Optional[SampleSortConfig] = None) -> float:
        """Predicted microseconds to sort ``n`` records on ``device``."""
        ...


class AnalyticCostModel:
    """:class:`DeviceCostModel` backed by the analytic sample-sort model.

    One instance serves any number of devices: the per-device
    :class:`AnalyticTimeModel` and every *(n, dtype, config, device)* query
    are memoised, because the service's event loop re-asks for the same
    prediction on every scheduling decision. The memo is opportunistic (a
    prediction is cheap closed-form arithmetic) and bounded: once it holds
    :data:`CACHE_LIMIT` entries it resets, so a long-lived service fed
    unique request sizes cannot grow it without bound.
    """

    #: Memo entries kept before the cache resets (bounded memory for
    #: long-lived services; each entry is one float keyed by workload).
    CACHE_LIMIT = 65536

    def __init__(self, calibration: Calibration = DEFAULT_CALIBRATION,
                 algorithm: str = "sample"):
        self.calibration = calibration
        self.algorithm = algorithm
        self._models: dict[DeviceSpec, AnalyticTimeModel] = {}
        self._cache: dict[tuple, float] = {}

    def _model(self, device: DeviceSpec) -> AnalyticTimeModel:
        model = self._models.get(device)
        if model is None:
            model = AnalyticTimeModel(device, self.calibration)
            self._models[device] = model
        return model

    # ------------------------------------------------------------ predictions
    def predict_sort_us(self, n: int, key_bytes: int, value_bytes: int,
                        device: DeviceSpec,
                        config: Optional[SampleSortConfig] = None) -> float:
        """Predicted microseconds to sort ``n`` records on ``device``."""
        if n <= 0:
            return 0.0
        key = (int(n), int(key_bytes), int(value_bytes), device, config)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        predicted = self._model(device).predict(
            self.algorithm, int(n), int(key_bytes), int(value_bytes),
            config=config,
        ).total_us
        if len(self._cache) >= self.CACHE_LIMIT:
            self._cache.clear()
        self._cache[key] = predicted
        return predicted

    def throughput(self, n: int, key_bytes: int, value_bytes: int,
                   device: DeviceSpec,
                   config: Optional[SampleSortConfig] = None) -> float:
        """Predicted sorting rate in elements per microsecond."""
        t = self.predict_sort_us(n, key_bytes, value_bytes, device, config)
        return n / t if t > 0 else 0.0


def assignment_weights(cost_model: "AnalyticCostModel | DeviceCostModel",
                       n: int, key_bytes: int, value_bytes: int,
                       devices: Sequence[DeviceSpec],
                       config: Optional[SampleSortConfig] = None
                       ) -> list[float]:
    """Relative predicted throughput of each device for an ``n``-record sort.

    This is the split rule for scattering one oversized request across a
    mixed pool: give each shard work proportional to its predicted rate, so
    every shard finishes at (predicted) the same instant. Weights are
    normalised to sum to ``len(devices)``, making the homogeneous case the
    all-ones vector — i.e. exactly the element-balanced split the pool used
    before it was device-aware.
    """
    times = [cost_model.predict_sort_us(n, key_bytes, value_bytes, device,
                                        config)
             for device in devices]
    if any(t <= 0 for t in times):
        return [1.0] * len(devices)
    rates = [1.0 / t for t in times]
    total = sum(rates)
    return [len(devices) * rate / total for rate in rates]


def pool_parallel_us(cost_model: "AnalyticCostModel | DeviceCostModel",
                     n: int, key_bytes: int, value_bytes: int,
                     devices: Sequence[DeviceSpec],
                     config: Optional[SampleSortConfig] = None) -> float:
    """Predicted time to drain ``n`` records spread across a whole pool.

    With work split proportionally to throughput every device finishes
    together, so the pool behaves like one device whose rate is the sum of
    the members' rates: ``t = n / sum_i(n / t_i)``. This is the drain-time
    estimate the cluster router ranks replicas by — a replica backed by a
    GTX-285 pool quotes a shorter drain than a C1060 pool holding the same
    backlog.
    """
    if n <= 0 or not devices:
        return 0.0
    rates = [n / t for device in devices
             if (t := cost_model.predict_sort_us(n, key_bytes, value_bytes,
                                                 device, config)) > 0]
    if not rates:
        return 0.0
    return n / sum(rates)


__all__ = [
    "DeviceCostModel",
    "AnalyticCostModel",
    "assignment_weights",
    "pool_parallel_us",
]
