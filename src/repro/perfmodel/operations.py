"""Closed-form operation counts per algorithm.

The functional simulator executes every kernel and *measures* traffic and
instruction counts, but it cannot be run at the paper's largest problem sizes
(up to n = 2^28) in reasonable wall-clock time on a CPU. The analytic model in
this package therefore re-derives the same quantities in closed form — number
of passes, bytes moved per pass, instructions per element, kernel launches —
directly from each algorithm's structure and configuration. The formulas are
*the same arithmetic the implementations perform*; the test-suite checks that
the closed-form counts agree with the functional simulator's measured counters
at sizes where both can run.

Every function returns a :class:`WorkEstimate`; the conversion to time happens
in :mod:`repro.perfmodel.model` with one shared set of effective-throughput
calibration constants, so the *relative* standing of the algorithms is decided
entirely by these counts.

Distribution dependence enters through a :class:`~repro.datagen.entropy.DistributionProfile`:

* sample sort gets cheaper on low-entropy inputs (elements falling into
  equality buckets skip bucket sorting entirely),
* the uniformity-assuming sorters (hybrid, bbsort) get *more expensive* on
  skewed inputs (their oversized buckets fall back to global-memory networks),
* radix sort is essentially distribution-independent,
* quicksort pays a modest penalty for heavily duplicated keys (its two-way
  partitions stop making progress early only because of the min==max check).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, log2
from typing import Optional

import numpy as np

from ..core.config import SampleSortConfig
from ..datagen.entropy import DistributionProfile
from .calibration import Calibration, DEFAULT_CALIBRATION


@dataclass
class WorkEstimate:
    """Device work of one complete sort, in counts (not time)."""

    #: Coalesced (streaming) global memory traffic in bytes.
    bytes_streamed: float = 0.0
    #: Scattered (uncoalesced) global memory traffic in bytes, *before* the
    #: transaction-inflation penalty the model applies.
    bytes_scattered: float = 0.0
    #: Dynamic scalar-thread instructions.
    instructions: float = 0.0
    #: Number of kernel launches.
    kernel_launches: float = 0.0
    #: Shared-memory traffic in bytes (charged at the compute side).
    shared_bytes: float = 0.0
    #: Number of block-wide barrier waits, summed over blocks.
    barriers: float = 0.0
    #: Free-form notes (passes, levels, ...), for reports and tests.
    detail: dict = field(default_factory=dict)

    def add(self, other: "WorkEstimate") -> "WorkEstimate":
        self.bytes_streamed += other.bytes_streamed
        self.bytes_scattered += other.bytes_scattered
        self.instructions += other.instructions
        self.kernel_launches += other.kernel_launches
        self.shared_bytes += other.shared_bytes
        self.barriers += other.barriers
        for key, value in other.detail.items():
            self.detail.setdefault(key, value)
        return self

    @property
    def total_bytes(self) -> float:
        return self.bytes_streamed + self.bytes_scattered


def _uniform_profile(n: int) -> DistributionProfile:
    """Profile assumed when the caller does not supply one (uniform keys)."""
    return DistributionProfile(
        n=n, distinct_keys=n, entropy_bits=float(np.log2(max(n, 2))),
        normalised_entropy=1.0, duplicate_mass=0.0, uniform_partition_skew=1.1,
        sortedness=0.5, is_64bit=False,
    )


def _word_factor(key_bytes: int) -> float:
    """Relative cost of comparing / manipulating one key on 32-bit hardware.

    GT200 scalar processors are 32-bit; comparisons, digit extractions and
    compare-exchanges on 64-bit keys take roughly twice the instructions.
    """
    return max(1.0, key_bytes / 4.0)


def _network_instr_per_element(seq_len: int, cal: Calibration,
                               key_bytes: int = 4) -> float:
    """Instructions per element of an odd-even / bitonic network on ``seq_len``."""
    if seq_len <= 1:
        return 0.0
    levels = max(1.0, ceil(log2(seq_len)))
    stages = levels * (levels + 1) / 2.0
    # one compare-exchange touches two elements => stages/2 comparators per
    # element per stage pair
    return cal.network_instr_per_compare * stages / 2.0 * _word_factor(key_bytes)


# --------------------------------------------------------------------- sample
def sample_sort_work(
    n: int,
    key_bytes: int,
    value_bytes: int = 0,
    profile: Optional[DistributionProfile] = None,
    config: Optional[SampleSortConfig] = None,
    cal: Calibration = DEFAULT_CALIBRATION,
) -> WorkEstimate:
    """Work of the paper's sample sort (Sections 4-5 structure)."""
    if n <= 0:
        return WorkEstimate(detail={"passes": 0})
    cfg = config or SampleSortConfig.paper()
    prof = profile or _uniform_profile(n)
    record = key_bytes + value_bytes
    k = cfg.k
    m = cfg.bucket_threshold

    # Number of k-way distribution passes until buckets are <= M (expected).
    passes = 0 if n <= m else max(1, ceil(log2(n / m) / log2(k)))
    passes = min(passes, cfg.max_distribution_depth)

    est = WorkEstimate(detail={"passes": passes})
    wf = _word_factor(key_bytes)
    traversal_instr = (2.0 * log2(k) + 3.0) * wf

    for _ in range(passes):
        blocks = max(1, ceil(n / cfg.tile_size))
        hist_entries = 2 * k * blocks
        # Phase 1: sample a*k keys (uncoalesced gather), network-sort in shared.
        sample_sz = cfg.oversampling_for(np.uint64 if key_bytes >= 8 else np.uint32) * k
        est.bytes_scattered += sample_sz * key_bytes
        est.instructions += sample_sz * _network_instr_per_element(sample_sz, cal, key_bytes)
        est.kernel_launches += 1
        # Phase 2: read keys, traverse, count with shared atomics, write histogram.
        est.bytes_streamed += n * key_bytes + hist_entries * 8
        est.instructions += n * (traversal_instr + cal.atomic_instr)
        est.shared_bytes += n * key_bytes
        est.kernel_launches += 1
        # Phase 3: scan of the histogram (small).
        est.bytes_streamed += 3 * hist_entries * 8
        est.instructions += 4 * hist_entries
        est.kernel_launches += 3
        # Phase 4: re-read keys (+values), recompute buckets, scatter records.
        est.bytes_streamed += n * record
        est.bytes_scattered += n * record
        est.instructions += n * (traversal_instr + cal.scatter_rank_instr)
        est.shared_bytes += n * key_bytes
        est.kernel_launches += 1

    # Bucket sorting. Elements in equality buckets (low-entropy inputs) skip it.
    constant_fraction = prof.duplicate_mass if cfg.detect_constant_buckets else 0.0
    if passes == 0:
        constant_fraction = 0.0
    active = n * (1.0 - min(0.85, constant_fraction))
    # expected leaf-bucket size after `passes` k-way splits (never above M,
    # never below the shared-memory sequence length)
    bucket_size = n / (k ** passes) if passes else n
    bucket_size = min(bucket_size, m)
    shared_seq = max(2, min(cfg.shared_sort_threshold,
                            (16 * 1024) // max(record, 1)))
    bucket_size = max(bucket_size, shared_seq)
    # quicksort partition levels inside a bucket until the network threshold
    levels = 0 if bucket_size <= shared_seq else ceil(log2(bucket_size / shared_seq))
    est.detail["bucket_partition_levels"] = levels
    est.bytes_streamed += active * record * 2 * levels
    # the in-bucket quicksort's partition work is lighter than the standalone
    # Cederman-Tsigas quicksort (no work-queue management, no extra counting
    # kernel), hence the 0.5 factor
    est.instructions += active * 0.5 * cal.quicksort_partition_instr * wf * levels
    # final network sort of shared-memory sized chunks
    est.bytes_streamed += active * record * 2
    est.shared_bytes += active * record
    est.instructions += active * _network_instr_per_element(shared_seq, cal, key_bytes)
    est.kernel_launches += 1
    # constant buckets may still need one copy into the final buffer
    est.bytes_streamed += (n - active) * record
    est.detail["constant_fraction"] = constant_fraction

    # Sorted inputs: the paper observes a mild slowdown (its worst case) caused
    # by less balanced buckets from clustered samples; model it as a small
    # overhead on the bucket-sort stage.
    if prof.sortedness > 0.95 and prof.normalised_entropy > 0.5:
        est.instructions *= cal.sample_sorted_penalty
    return est


# ---------------------------------------------------------------------- merge
def merge_sort_work(
    n: int,
    key_bytes: int,
    value_bytes: int = 0,
    profile: Optional[DistributionProfile] = None,
    tile: int = 256,
    cal: Calibration = DEFAULT_CALIBRATION,
) -> WorkEstimate:
    """Work of the Thrust two-way merge sort (tile sort + log2(n/tile) merges)."""
    if n <= 0:
        return WorkEstimate(detail={"merge_passes": 0})
    record = key_bytes + value_bytes
    wf = _word_factor(key_bytes)
    est = WorkEstimate()
    # tile sort
    est.bytes_streamed += 2 * n * record
    est.shared_bytes += n * record
    est.instructions += n * _network_instr_per_element(tile, cal, key_bytes)
    est.kernel_launches += 1
    # merge passes
    merge_passes = 0 if n <= tile else ceil(log2(n / tile))
    for p in range(merge_passes):
        run = tile * (2 ** p)
        est.bytes_streamed += 2 * n * record
        est.instructions += n * (cal.merge_base_instr + log2(max(run, 2)) * wf)
        est.kernel_launches += 1
    est.detail["merge_passes"] = merge_passes
    return est


# ---------------------------------------------------------------------- radix
def radix_sort_work(
    n: int,
    key_bytes: int,
    value_bytes: int = 0,
    profile: Optional[DistributionProfile] = None,
    variant: str = "thrust",
    digit_bits: int = 4,
    cal: Calibration = DEFAULT_CALIBRATION,
) -> WorkEstimate:
    """Work of the scan-based LSD radix sorts (CUDPP / Thrust variants)."""
    if n <= 0:
        return WorkEstimate(detail={"passes": 0})
    record = key_bytes + value_bytes
    key_bits = key_bytes * 8
    wf = _word_factor(key_bytes)
    passes = ceil(key_bits / digit_bits)
    hist_instr, scatter_instr = (
        cal.radix_cudpp_instr if variant == "cudpp" else cal.radix_thrust_instr
    )
    # The Thrust 64-bit code path carries substantial extra per-pass work (see
    # Calibration.radix_wide_key_penalty).
    wide_penalty = cal.radix_wide_key_penalty if key_bytes > 4 else 1.0
    tile = 1024
    est = WorkEstimate(detail={"passes": passes})
    for _ in range(passes):
        blocks = max(1, ceil(n / tile))
        hist_entries = (1 << digit_bits) * blocks
        # histogram kernel: read keys, local split in shared memory
        est.bytes_streamed += n * key_bytes + hist_entries * 8
        est.shared_bytes += 2 * n * key_bytes
        est.instructions += n * (hist_instr + 1.0 * digit_bits) * wf * wide_penalty
        est.kernel_launches += 1
        # scan
        est.bytes_streamed += 3 * hist_entries * 8
        est.instructions += 4 * hist_entries
        est.kernel_launches += 3
        # scatter kernel: read records, write records in near-coalesced runs
        est.bytes_streamed += n * record
        run_length = max(1.0, tile / (1 << digit_bits))
        scatter_fraction = min(1.0, cal.radix_scatter_scatter_fraction * 32.0 / run_length * 0.2)
        est.bytes_streamed += n * record * (1.0 - scatter_fraction)
        est.bytes_scattered += n * record * scatter_fraction
        est.instructions += n * scatter_instr * wf * wide_penalty
        est.kernel_launches += 1
    return est


# ------------------------------------------------------------------ quicksort
def quicksort_work(
    n: int,
    key_bytes: int,
    value_bytes: int = 0,
    profile: Optional[DistributionProfile] = None,
    cutoff: int = 1024,
    cal: Calibration = DEFAULT_CALIBRATION,
) -> WorkEstimate:
    """Work of the Cederman-Tsigas explicit-partition GPU quicksort."""
    if n <= 0:
        return WorkEstimate(detail={"levels": 0})
    prof = profile or _uniform_profile(n)
    record = key_bytes + value_bytes
    levels = 0 if n <= cutoff else ceil(log2(n / cutoff))
    # midpoint pivots are slightly unbalanced on skewed / clustered inputs
    imbalance = 1.0 + 0.2 * min(3.0, max(0.0, prof.uniform_partition_skew - 1.0))
    # heavily duplicated keys terminate early thanks to the min==max check
    if prof.normalised_entropy < 0.35:
        levels = max(1, ceil(levels * 0.6))
    effective_levels = levels * imbalance
    wf = _word_factor(key_bytes)
    est = WorkEstimate(detail={"levels": levels})
    # per level: counting pass (read) + move pass (read + scattered two-stream write)
    est.bytes_streamed += effective_levels * n * (2 * record)
    est.bytes_scattered += effective_levels * n * record * 0.25
    est.instructions += effective_levels * n * cal.quicksort_partition_instr * wf
    est.kernel_launches += 2 * levels
    # small-case bitonic sorts
    est.bytes_streamed += 2 * n * record
    est.shared_bytes += n * record
    est.instructions += n * _network_instr_per_element(cutoff, cal, key_bytes)
    est.kernel_launches += 1
    return est


# ----------------------------------------------------------- uniformity-based
def _uniform_bucket_work(
    n: int,
    key_bytes: int,
    value_bytes: int,
    profile: Optional[DistributionProfile],
    target_bucket: int,
    network_kind: str,
    cal: Calibration,
) -> WorkEstimate:
    """Shared distribution + per-bucket-sort work of hybrid sort and bbsort."""
    prof = profile or _uniform_profile(n)
    record = key_bytes + value_bytes
    wf = _word_factor(key_bytes)
    est = WorkEstimate()
    # min/max reductions + bucket-refinement pass + histogram + scan + scatter
    est.bytes_streamed += 2 * n * key_bytes          # min and max reductions
    est.bytes_streamed += n * key_bytes              # refinement / counting pass
    est.bytes_streamed += n * key_bytes              # histogram read
    est.bytes_streamed += n * record                 # scatter read
    est.bytes_scattered += n * record                # scatter write
    est.instructions += n * (2.0 * cal.projection_instr + cal.scatter_rank_instr + 4.0) * wf
    est.kernel_launches += 10

    # per-bucket sorting: buckets inflate with the distribution's skew
    shared_capacity = (16 * 1024) // max(record, 1)
    typical_bucket = target_bucket * max(1.0, prof.uniform_partition_skew)
    largest_bucket = min(n, target_bucket * max(
        1.0, prof.uniform_partition_skew * cal.skew_amplification))
    if prof.normalised_entropy < 0.35:
        # nearly all keys identical: one bucket receives most of the input
        largest_bucket = max(largest_bucket, n * prof.duplicate_mass)
    oversized_fraction = 0.0
    if largest_bucket > shared_capacity:
        oversized_fraction = min(1.0, max(prof.duplicate_mass,
                                          (prof.uniform_partition_skew - 1.0) / 10.0))
    in_shared = n * (1.0 - oversized_fraction)
    oversized = n - in_shared

    est.bytes_streamed += 2 * in_shared * record
    est.shared_bytes += in_shared * record
    est.instructions += in_shared * cal.uniform_small_sort_factor * _network_instr_per_element(
        min(typical_bucket, shared_capacity), cal, key_bytes)

    if oversized > 0:
        # global-memory network on the oversized buckets: every stage streams
        # the bucket through DRAM
        levels = max(1.0, ceil(log2(max(largest_bucket, 2))))
        stages = levels * (levels + 1) / 2.0
        est.bytes_streamed += 2 * oversized * record * stages
        est.instructions += oversized * cal.network_instr_per_compare * stages / 2.0 * wf
    est.kernel_launches += 1
    est.detail.update({
        "largest_bucket": float(largest_bucket),
        "oversized_fraction": oversized_fraction,
    })
    return est


def bbsort_work(
    n: int, key_bytes: int, value_bytes: int = 0,
    profile: Optional[DistributionProfile] = None,
    cal: Calibration = DEFAULT_CALIBRATION,
) -> WorkEstimate:
    """Work of bbsort (uniformity-assuming bucket sort, bitonic small sorter)."""
    if n <= 0:
        return WorkEstimate()
    return _uniform_bucket_work(n, key_bytes, value_bytes, profile, 256, "bitonic", cal)


def hybrid_sort_work(
    n: int, key_bytes: int, value_bytes: int = 0,
    profile: Optional[DistributionProfile] = None,
    cal: Calibration = DEFAULT_CALIBRATION,
) -> WorkEstimate:
    """Work of hybrid sort; raises no exception here — DNF detection is the
    harness's job (it mirrors the crash the paper observed on DDuplicates)."""
    if n <= 0:
        return WorkEstimate()
    return _uniform_bucket_work(n, key_bytes, value_bytes, profile, 512, "odd_even", cal)


#: Registry used by the analytic model and the harness.
WORK_FUNCTIONS = {
    "sample": sample_sort_work,
    "thrust merge": merge_sort_work,
    "thrust radix": lambda *a, **kw: radix_sort_work(*a, variant="thrust", **kw),
    "cudpp radix": lambda *a, **kw: radix_sort_work(*a, variant="cudpp", **kw),
    "quick": quicksort_work,
    "bbsort": bbsort_work,
    "hybrid": hybrid_sort_work,
}


__all__ = [
    "WorkEstimate",
    "sample_sort_work",
    "merge_sort_work",
    "radix_sort_work",
    "quicksort_work",
    "bbsort_work",
    "hybrid_sort_work",
    "WORK_FUNCTIONS",
]
