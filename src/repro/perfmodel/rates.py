"""Sorting-rate helpers and distribution profiles for the analytic model.

The paper reports every result as *sorted elements per microsecond* as a
function of the input size. This module provides the small utilities shared by
the harness and the benchmarks: canonical distribution profiles (so the
analytic model can be evaluated at sizes where generating and profiling the
actual keys would be wasteful), rate-series generation over a size sweep, and
the average/minimum speed-up summaries quoted in the paper's abstract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from ..datagen.entropy import DistributionProfile, profile_keys
from ..datagen.keytypes import get_key_type
from ..datagen.distributions import generate
from ..gpu.device import DeviceSpec, TESLA_C1060
from .calibration import Calibration, DEFAULT_CALIBRATION
from .model import AnalyticTimeModel


def canonical_profile(distribution: str, n: int, is_64bit: bool = False
                      ) -> DistributionProfile:
    """A size-scaled :class:`DistributionProfile` for a named distribution.

    Profiles are measured once on a moderate sample of the real generator
    (2^16 keys) and rescaled to ``n``: the entropy-related quantities of the
    paper's distributions are size-stable except for DeterministicDuplicates,
    whose distinct-key count grows like ``log n`` (which is what the formula
    below reproduces).
    """
    sample_n = min(n, 1 << 16)
    keys = generate(distribution, max(sample_n, 1), seed=12345)
    prof = profile_keys(keys)
    distinct = prof.distinct_keys
    if distribution == "dduplicates":
        distinct = max(1, int(np.ceil(np.log2(max(n, 2)))))
    elif prof.normalised_entropy > 0.9:
        distinct = n
    return DistributionProfile(
        n=n,
        distinct_keys=distinct,
        entropy_bits=prof.entropy_bits,
        normalised_entropy=prof.normalised_entropy,
        duplicate_mass=prof.duplicate_mass,
        uniform_partition_skew=prof.uniform_partition_skew,
        sortedness=prof.sortedness,
        is_64bit=is_64bit,
    )


@dataclass(frozen=True)
class RatePoint:
    """One point of a sorting-rate curve."""

    algorithm: str
    n: int
    rate: float          # elements / microsecond; NaN for DNF
    time_us: float
    failed: bool = False


def rate_series(
    algorithm: str,
    sizes: Sequence[int],
    distribution: str = "uniform",
    key_type: str = "uint32",
    with_values: bool = False,
    device: DeviceSpec = TESLA_C1060,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> list[RatePoint]:
    """Predicted sorting-rate curve of one algorithm over a size sweep."""
    kt = get_key_type(key_type)
    value_bytes = 4 if with_values else 0
    model = AnalyticTimeModel(device, calibration)
    points: list[RatePoint] = []
    for n in sizes:
        profile = canonical_profile(distribution, n, is_64bit=kt.key_bits == 64)
        failed = algorithm_fails(algorithm, distribution, kt.name, profile, n)
        if failed:
            points.append(RatePoint(algorithm, n, float("nan"), float("nan"), True))
            continue
        pred = model.predict(algorithm, n, kt.key_bytes, value_bytes, profile)
        points.append(RatePoint(algorithm, n, pred.sorting_rate, pred.total_us))
    return points


def algorithm_fails(algorithm: str, distribution: str, key_type: str,
                    profile: Optional[DistributionProfile], n: int) -> bool:
    """Whether the paper reports the algorithm as unusable on this workload.

    * hybrid sort only accepts float keys and crashes on DeterministicDuplicates;
    * the CUDPP radix sort does not accept 64-bit keys;
    * Thrust merge sort is only provided for key-value pairs in the paper, but
      the reproduction's implementation handles key-only inputs too, so it is
      not marked as failing here.
    """
    if algorithm == "hybrid":
        if key_type != "float32":
            return True
        if distribution in ("dduplicates", "zero") and n > (1 << 15):
            return True
    if algorithm == "cudpp radix" and key_type == "uint64":
        return True
    return False


def average_speedup(rates_a: Iterable[float], rates_b: Iterable[float]) -> float:
    """Mean of the pointwise ratios a/b (the paper's "on average X% faster")."""
    ratios = [a / b for a, b in zip(rates_a, rates_b)
              if np.isfinite(a) and np.isfinite(b) and b > 0]
    if not ratios:
        return float("nan")
    return float(np.mean(ratios))


def minimum_speedup(rates_a: Iterable[float], rates_b: Iterable[float]) -> float:
    """Minimum pointwise ratio a/b (the paper's "at least X% faster")."""
    ratios = [a / b for a, b in zip(rates_a, rates_b)
              if np.isfinite(a) and np.isfinite(b) and b > 0]
    if not ratios:
        return float("nan")
    return float(np.min(ratios))


__all__ = [
    "canonical_profile",
    "RatePoint",
    "rate_series",
    "algorithm_fails",
    "average_speedup",
    "minimum_speedup",
]
