"""Analytic performance model: closed-form work counts, effective-throughput
calibration and sorting-rate prediction over the paper's full size range."""

from .calibration import Calibration, CalibrationLedger, DEFAULT_CALIBRATION
from .costmodel import (
    AnalyticCostModel,
    DeviceCostModel,
    assignment_weights,
    pool_parallel_us,
)
from .model import AnalyticTimeModel, PredictedTime, device_pair_comparison
from .operations import (
    WORK_FUNCTIONS,
    WorkEstimate,
    bbsort_work,
    hybrid_sort_work,
    merge_sort_work,
    quicksort_work,
    radix_sort_work,
    sample_sort_work,
)
from .rates import (
    RatePoint,
    algorithm_fails,
    average_speedup,
    canonical_profile,
    minimum_speedup,
    rate_series,
)

__all__ = [
    "Calibration",
    "CalibrationLedger",
    "DEFAULT_CALIBRATION",
    "AnalyticCostModel",
    "DeviceCostModel",
    "assignment_weights",
    "pool_parallel_us",
    "AnalyticTimeModel",
    "PredictedTime",
    "device_pair_comparison",
    "WORK_FUNCTIONS",
    "WorkEstimate",
    "bbsort_work",
    "hybrid_sort_work",
    "merge_sort_work",
    "quicksort_work",
    "radix_sort_work",
    "sample_sort_work",
    "RatePoint",
    "algorithm_fails",
    "average_speedup",
    "canonical_profile",
    "minimum_speedup",
    "rate_series",
]
