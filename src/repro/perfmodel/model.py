"""Analytic device-time model: operation counts -> predicted sorting time.

:class:`AnalyticTimeModel` converts a :class:`~repro.perfmodel.operations.WorkEstimate`
into microseconds on a :class:`~repro.gpu.device.DeviceSpec` using the shared
effective-throughput calibration. It mirrors the structure of the simulator's
:class:`~repro.gpu.timing.DeviceTimeModel` (memory time vs compute time with
overlap, plus launch overhead, plus a small-input utilisation roll-off) so the
two predictors can be compared directly at sizes where the functional simulator
is runnable.

This model is what regenerates the paper's figures over the full problem-size
range (2^17 ... 2^28); see :mod:`repro.harness.figures`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..datagen.entropy import DistributionProfile
from ..gpu.device import DeviceSpec, GTX_285, TESLA_C1060
from .calibration import Calibration, DEFAULT_CALIBRATION
from .operations import WORK_FUNCTIONS, WorkEstimate


@dataclass(frozen=True)
class PredictedTime:
    """Predicted timing breakdown of one sort."""

    algorithm: str
    n: int
    memory_us: float
    compute_us: float
    overhead_us: float
    utilisation: float
    work: WorkEstimate

    @property
    def total_us(self) -> float:
        hi = max(self.memory_us, self.compute_us)
        lo = min(self.memory_us, self.compute_us)
        # high-occupancy sorting kernels overlap most of the shorter component
        return hi + 0.3 * lo + self.overhead_us

    @property
    def sorting_rate(self) -> float:
        """Elements per microsecond (the paper's y-axis)."""
        t = self.total_us
        return self.n / t if t > 0 else 0.0

    @property
    def bound(self) -> str:
        return "memory" if self.memory_us >= self.compute_us else "compute"


class AnalyticTimeModel:
    """Predict sorting times for any registered algorithm on any device."""

    def __init__(self, device: DeviceSpec = TESLA_C1060,
                 calibration: Calibration = DEFAULT_CALIBRATION):
        self.device = device
        self.calibration = calibration

    # -------------------------------------------------------------- utilities
    def utilisation(self, n: int) -> float:
        """Fraction of the chip kept busy for an input of ``n`` elements.

        Small inputs cannot fill 30 SMs x 1024 threads; all of the paper's
        curves rise with n for exactly this reason before flattening out.
        """
        cal = self.calibration
        # scale the saturation point with the chip's parallelism relative to
        # the Tesla C1060 reference
        reference_parallelism = 30 * 1024
        parallelism = self.device.sm_count * self.device.max_threads_per_sm
        saturation = cal.saturation_elements * parallelism / reference_parallelism
        # soft saturation: rates keep rising gently with n (as in the paper's
        # figures) instead of hitting a hard ceiling
        n = max(int(n), 1)
        return float((n / (n + 0.3 * saturation)) ** 0.5)

    def memory_time_us(self, work: WorkEstimate) -> float:
        cal = self.calibration
        effective_bw = self.device.bytes_per_us * cal.effective_bandwidth_fraction
        issued = work.bytes_streamed + work.bytes_scattered * cal.scatter_inflation
        return issued / effective_bw

    def compute_time_us(self, work: WorkEstimate, utilisation: float) -> float:
        cal = self.calibration
        rate = (self.device.peak_instruction_rate
                * cal.effective_instruction_fraction
                * max(utilisation, 1e-6))
        instructions = work.instructions + cal.shared_word_instr * work.shared_bytes / 4.0
        return instructions / rate

    # ---------------------------------------------------------------- predict
    def predict_work(self, algorithm: str, work: WorkEstimate, n: int) -> PredictedTime:
        """Convert an already-computed work estimate into predicted time."""
        util = self.utilisation(n)
        mem = self.memory_time_us(work) / max(util, 1e-6) ** 0.5
        comp = self.compute_time_us(work, util)
        overhead = work.kernel_launches * self.calibration.kernel_overhead_us
        return PredictedTime(
            algorithm=algorithm, n=n, memory_us=mem, compute_us=comp,
            overhead_us=overhead, utilisation=util, work=work,
        )

    def predict(
        self,
        algorithm: str,
        n: int,
        key_bytes: int,
        value_bytes: int = 0,
        profile: Optional[DistributionProfile] = None,
        **work_kwargs,
    ) -> PredictedTime:
        """Predict the time of ``algorithm`` on the given workload."""
        if algorithm not in WORK_FUNCTIONS:
            raise KeyError(
                f"unknown algorithm {algorithm!r}; available: {sorted(WORK_FUNCTIONS)}"
            )
        work = WORK_FUNCTIONS[algorithm](
            n, key_bytes, value_bytes, profile, cal=self.calibration, **work_kwargs
        )
        return self.predict_work(algorithm, work, n)

    def sorting_rate(self, algorithm: str, n: int, key_bytes: int,
                     value_bytes: int = 0,
                     profile: Optional[DistributionProfile] = None) -> float:
        """Convenience: predicted elements per microsecond."""
        return self.predict(algorithm, n, key_bytes, value_bytes, profile).sorting_rate


def device_pair_comparison(
    algorithm: str, n: int, key_bytes: int, value_bytes: int = 0,
    profile: Optional[DistributionProfile] = None,
    device_a: DeviceSpec = TESLA_C1060, device_b: DeviceSpec = GTX_285,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> dict:
    """The Figure-6 experiment in one call: rates on two devices + improvement.

    The paper uses the Tesla C1060 / GTX 285 pair (same core count, +14 % clock,
    +70 % bandwidth) to classify the algorithms as memory- or compute-bound by
    how much they speed up on the faster-memory part.
    """
    model_a = AnalyticTimeModel(device_a, calibration)
    model_b = AnalyticTimeModel(device_b, calibration)
    pred_a = model_a.predict(algorithm, n, key_bytes, value_bytes, profile)
    pred_b = model_b.predict(algorithm, n, key_bytes, value_bytes, profile)
    return {
        "algorithm": algorithm,
        "n": n,
        device_a.name: pred_a.sorting_rate,
        device_b.name: pred_b.sorting_rate,
        "improvement": pred_b.sorting_rate / pred_a.sorting_rate - 1.0,
        "bound": pred_a.bound,
    }


__all__ = ["PredictedTime", "AnalyticTimeModel", "device_pair_comparison"]
