"""Two-way merge sort baseline (Thrust merge sort, Satish/Harris/Garland 2009).

The paper's main comparison-based competitor: "the fastest algorithm described
in the literature currently is a two-way merge sort by Harris et al. It divides
the input into n/256 tiles, sorts them using odd-even merge sort and two-way
merges the results in log(n/256) iterations" (§3). It is also the only
published comparison sort that handles 32-bit key-value pairs, which is why
Figure 3 compares against it on that input type.

Structure on the simulator:

* **Tile sort kernel** — one block per 256-element tile; the tile is staged into
  shared memory and sorted with Batcher's odd-even merge network.
* **Merge passes** — ``log2(n / 256)`` kernels; in pass ``i`` each block merges
  a pair of sorted runs of length ``256 * 2^i`` by rank computation (every
  element binary-searches its position in the partner run: ``log2`` comparisons
  per element, no divergence within a warp beyond the search itself), reading
  and writing the full data set once per pass through global memory.

The two-way structure is exactly what the paper's bandwidth argument targets:
``O(n log(n/256))`` global memory traffic versus sample sort's
``O(n log_k(n/M))``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..gpu.block import BlockContext
from ..gpu.device import DeviceSpec, TESLA_C1060
from ..gpu.grid import LaunchConfig, grid_for
from ..gpu.kernel import KernelLauncher
from ..gpu.memory import DeviceArray
from ..primitives.sorting_networks import odd_even_merge_sort
from ..core.base import GpuSorter, SortResult

#: Tile size of the initial network sort (the paper quotes n/256 tiles).
MERGE_TILE = 256
#: Scalar instructions charged per element per merge pass, on top of the
#: binary-search comparisons (index arithmetic, predicated moves).
MERGE_BASE_INSTR = 6.0


def _tile_sort_kernel(ctx: BlockContext, keys: DeviceArray,
                      values: Optional[DeviceArray], n: int) -> None:
    start, end = ctx.tile_bounds(n)
    if end <= start:
        return
    tile_keys = ctx.read_range(keys, start, end - start)
    tile_values = ctx.read_range(values, start, end - start) if values is not None else None
    stage = ctx.shared.alloc(tile_keys.size, tile_keys.dtype)
    stage[:] = tile_keys
    sorted_keys, sorted_values, _ = odd_even_merge_sort(tile_keys, tile_values, ctx=ctx)
    ctx.write_range(keys, start, sorted_keys)
    if values is not None and sorted_values is not None:
        ctx.write_range(values, start, sorted_values)


def merge_two_runs(
    a_keys: np.ndarray, b_keys: np.ndarray,
    a_values: Optional[np.ndarray], b_values: Optional[np.ndarray],
) -> tuple[np.ndarray, Optional[np.ndarray]]:
    """Stable rank-based merge of two sorted runs (the per-block merge step)."""
    ranks_a = np.arange(a_keys.size) + np.searchsorted(b_keys, a_keys, side="left")
    ranks_b = np.arange(b_keys.size) + np.searchsorted(a_keys, b_keys, side="right")
    total = a_keys.size + b_keys.size
    out_keys = np.empty(total, dtype=a_keys.dtype)
    out_keys[ranks_a] = a_keys
    out_keys[ranks_b] = b_keys
    out_values = None
    if a_values is not None and b_values is not None:
        out_values = np.empty(total, dtype=a_values.dtype)
        out_values[ranks_a] = a_values
        out_values[ranks_b] = b_values
    return out_keys, out_values


def _merge_pass_kernel(
    ctx: BlockContext,
    src_keys: DeviceArray, src_values: Optional[DeviceArray],
    dst_keys: DeviceArray, dst_values: Optional[DeviceArray],
    run_length: int, n: int,
) -> None:
    pair_start = ctx.block_id * 2 * run_length
    if pair_start >= n:
        return
    a_start = pair_start
    a_end = min(n, a_start + run_length)
    b_start = a_end
    b_end = min(n, b_start + run_length)

    a_keys = ctx.read_range(src_keys, a_start, a_end - a_start)
    b_keys = ctx.read_range(src_keys, b_start, b_end - b_start)
    a_values = b_values = None
    if src_values is not None:
        a_values = ctx.read_range(src_values, a_start, a_end - a_start)
        b_values = ctx.read_range(src_values, b_start, b_end - b_start)

    total = (a_end - a_start) + (b_end - b_start)
    search_cost = np.log2(max(run_length, 2))
    ctx.charge_per_element(total, MERGE_BASE_INSTR + search_cost)

    if b_keys.size == 0:
        merged_keys, merged_values = a_keys, a_values
    else:
        merged_keys, merged_values = merge_two_runs(a_keys, b_keys, a_values, b_values)

    ctx.write_range(dst_keys, a_start, merged_keys)
    if dst_values is not None and merged_values is not None:
        ctx.write_range(dst_values, a_start, merged_values)


class ThrustMergeSorter(GpuSorter):
    """Thrust-style two-way merge sort on the simulator."""

    name = "thrust merge"
    supports_values = True
    supported_key_dtypes = None

    def __init__(self, device: DeviceSpec = TESLA_C1060, tile: int = MERGE_TILE):
        super().__init__(device)
        if tile < 2 or tile & (tile - 1):
            raise ValueError(f"tile must be a power of two >= 2, got {tile}")
        self.tile = tile

    def _sort_impl(self, keys: np.ndarray, values: Optional[np.ndarray]) -> SortResult:
        launcher = KernelLauncher(self.device)
        n = int(keys.size)

        buf_keys = [launcher.gmem.from_host(keys, name="merge_keys_a"),
                    launcher.gmem.alloc(n, keys.dtype, name="merge_keys_b")]
        buf_values = [None, None]
        if values is not None:
            buf_values = [launcher.gmem.from_host(values, name="merge_values_a"),
                          launcher.gmem.alloc(n, values.dtype, name="merge_values_b")]

        # Phase 1: sort 256-element tiles with the odd-even merge network.
        tile_cfg = grid_for(n, min(self.tile, self.device.max_threads_per_block),
                            max(1, self.tile // min(self.tile, self.device.max_threads_per_block)))
        launcher.launch(
            _tile_sort_kernel, tile_cfg, buf_keys[0], buf_values[0], n,
            problem_size=n, phase="tile_sort", name="merge_tile_sort",
        )

        # Phase 2: log2(n / tile) two-way merge passes, ping-ponging buffers.
        src, dst = 0, 1
        run_length = self.tile
        merge_passes = 0
        while run_length < n:
            pairs = max(1, -(-n // (2 * run_length)))
            cfg = LaunchConfig(grid_dim=pairs, block_dim=min(self.tile, self.device.max_threads_per_block),
                               elements_per_thread=max(1, (2 * run_length) // self.tile))
            launcher.launch(
                _merge_pass_kernel, cfg, buf_keys[src], buf_values[src],
                buf_keys[dst], buf_values[dst], run_length, n,
                problem_size=n, phase="merge_pass", name=f"merge_pass_{merge_passes}",
            )
            src, dst = dst, src
            run_length *= 2
            merge_passes += 1

        return SortResult(
            keys=buf_keys[src].to_host(),
            values=None if buf_values[src] is None else buf_values[src].to_host(),
            trace=launcher.trace,
            algorithm=self.name,
            device=self.device,
            stats={"merge_passes": merge_passes, "tile": self.tile},
        )


__all__ = ["ThrustMergeSorter", "merge_two_runs", "MERGE_TILE"]
