"""Uniformity-assuming bucket distribution shared by hybrid sort and bbsort.

Both hybrid sort (Sintorn & Assarsson) and bbsort (Chen et al.) start with a
distribution phase that "assumes that the keys are uniformly distributed" (§4):
an element's bucket is computed directly from its value by a linear projection
of the key range onto ``B`` buckets, with no sampling and no search tree. That
makes the phase cheaper than sample sort's (one multiply instead of a ``log k``
tree walk) but makes the bucket sizes track the input distribution — the reason
both algorithms degrade on the Bucket and Staggered distributions and fall over
on DeterministicDuplicates (§6).

The engine provides:

* min/max key range detection (device reductions),
* a histogram / scan / scatter pipeline identical in structure to sample sort's
  Phases 2–4 but using the linear projection, and
* the resulting bucket boundaries, which the callers sort with their own
  small-case strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..gpu.block import BlockContext
from ..gpu.grid import grid_for
from ..gpu.kernel import KernelLauncher
from ..gpu.memory import DeviceArray
from ..primitives.histogram import block_histogram
from ..primitives.reduce import device_reduce
from ..primitives.scan import device_exclusive_scan
from ..core.scatter_kernel import local_bucket_ranks

#: Instructions per element for the linear bucket projection.
PROJECTION_INSTR = 4.0


@dataclass
class BucketLayout:
    """Result of one uniformity-assuming distribution pass."""

    bucket_starts: np.ndarray
    bucket_sizes: np.ndarray
    num_buckets: int
    key_min: float
    key_max: float

    @property
    def largest_bucket(self) -> int:
        return int(self.bucket_sizes.max()) if self.bucket_sizes.size else 0

    @property
    def mean_bucket(self) -> float:
        if self.bucket_sizes.size == 0:
            return 0.0
        return float(self.bucket_sizes.sum() / self.num_buckets)

    @property
    def skew(self) -> float:
        """Largest bucket over the ideal (mean) bucket size."""
        mean = self.mean_bucket
        return float(self.largest_bucket / mean) if mean > 0 else 1.0


def project_buckets(keys: np.ndarray, key_min, key_max, num_buckets: int) -> np.ndarray:
    """The linear projection bucket = (key - min) / (max - min) * B."""
    as_float = keys.astype(np.float64)
    lo = float(key_min)
    hi = float(key_max)
    if hi <= lo:
        return np.zeros(keys.shape, dtype=np.int64)
    scaled = (as_float - lo) / (hi - lo) * num_buckets
    return np.minimum(scaled.astype(np.int64), num_buckets - 1)


def _uniform_hist_kernel(ctx: BlockContext, keys: DeviceArray, hist: DeviceArray,
                         key_min, key_max, num_buckets: int, n: int,
                         num_blocks: int) -> None:
    start, end = ctx.tile_bounds(n)
    if end <= start:
        ctx.store(hist, np.arange(num_buckets) * num_blocks + ctx.block_id,
                  np.zeros(num_buckets, dtype=np.int64))
        return
    tile = ctx.read_range(keys, start, end - start)
    buckets = project_buckets(tile, key_min, key_max, num_buckets)
    ctx.charge_per_element(tile.size, PROJECTION_INSTR)
    counts = block_histogram(ctx, buckets, num_buckets, counter_groups=4)
    ctx.store(hist, np.arange(num_buckets) * num_blocks + ctx.block_id, counts)


def _uniform_scatter_kernel(
    ctx: BlockContext,
    src_keys: DeviceArray, src_values: Optional[DeviceArray],
    dst_keys: DeviceArray, dst_values: Optional[DeviceArray],
    offsets: DeviceArray, key_min, key_max, num_buckets: int, n: int,
    num_blocks: int,
) -> None:
    start, end = ctx.tile_bounds(n)
    if end <= start:
        return
    tile = ctx.read_range(src_keys, start, end - start)
    buckets = project_buckets(tile, key_min, key_max, num_buckets)
    ctx.charge_per_element(tile.size, PROJECTION_INSTR + 3.0)
    ranks = local_bucket_ranks(buckets)
    base = ctx.load(offsets, buckets * num_blocks + ctx.block_id)
    positions = base + ranks
    ctx.store(dst_keys, positions, tile)
    if src_values is not None and dst_values is not None:
        vals = ctx.read_range(src_values, start, end - start)
        ctx.store(dst_values, positions, vals)


def run_uniform_distribution(
    launcher: KernelLauncher,
    src_keys: DeviceArray,
    src_values: Optional[DeviceArray],
    dst_keys: DeviceArray,
    dst_values: Optional[DeviceArray],
    num_buckets: int,
    block_threads: int = 256,
    elements_per_thread: int = 4,
    phase_prefix: str = "uniform",
) -> BucketLayout:
    """Distribute ``src`` into ``num_buckets`` uniform key sub-ranges in ``dst``."""
    n = int(src_keys.size)
    key_min = device_reduce(launcher, src_keys, n, op="min",
                            phase=f"{phase_prefix}_minmax")
    key_max = device_reduce(launcher, src_keys, n, op="max",
                            phase=f"{phase_prefix}_minmax")

    launch_cfg = grid_for(n, block_threads, elements_per_thread)
    num_blocks = launch_cfg.grid_dim
    hist = launcher.gmem.alloc(num_buckets * num_blocks, np.int64,
                               name="uniform_hist")
    launcher.launch(
        _uniform_hist_kernel, launch_cfg, src_keys, hist, key_min, key_max,
        num_buckets, n, num_blocks,
        problem_size=n, phase=f"{phase_prefix}_histogram", name="uniform_histogram",
    )
    offsets = device_exclusive_scan(launcher, hist, num_buckets * num_blocks,
                                    phase=f"{phase_prefix}_scan")
    launcher.launch(
        _uniform_scatter_kernel, launch_cfg, src_keys, src_values,
        dst_keys, dst_values, offsets, key_min, key_max, num_buckets, n, num_blocks,
        problem_size=n, phase=f"{phase_prefix}_scatter", name="uniform_scatter",
    )

    counts = hist.data[: num_buckets * num_blocks].reshape(num_buckets, num_blocks)
    bucket_sizes = counts.sum(axis=1).astype(np.int64)
    scanned = offsets.data[: num_buckets * num_blocks].reshape(num_buckets, num_blocks)
    bucket_starts = scanned[:, 0].astype(np.int64)
    launcher.gmem.free(hist)
    launcher.gmem.free(offsets)
    return BucketLayout(
        bucket_starts=bucket_starts,
        bucket_sizes=bucket_sizes,
        num_buckets=num_buckets,
        key_min=float(key_min),
        key_max=float(key_max),
    )


__all__ = ["BucketLayout", "project_buckets", "run_uniform_distribution",
           "PROJECTION_INSTR"]
