"""Radix sort baselines (CUDPP radix sort and Thrust radix sort).

Radix sort is the non-comparison competitor: "Harris et al. presented a very
efficient variant of radix sort, which is superior to all other GPU and CPU
sorting algorithms at least for 32-bit integer keys and key-value pairs" (§3).
The paper compares against two library implementations — the CUDPP radix sort
and the Thrust radix sort — and the headline 64-bit result exists precisely
because radix sort's work grows with the *key length* (number of digit passes)
while sample sort's grows with ``log n``.

Structure per digit pass (LSD, ``digit_bits`` bits per pass):

1. **histogram kernel** — each block reads its tile, extracts the digit of
   every key, sorts the tile by digit in shared memory (the Satish et al.
   optimisation that makes the later scatter nearly coalesced) and writes its
   per-digit counts to a column-major ``R x p`` table,
2. **scan** — exclusive prefix sum of that table (global digit offsets),
3. **scatter kernel** — re-reads the tile, recomputes digits and writes each
   record to ``offset[digit, block] + local rank``; because the tile was
   processed in digit order the writes form long contiguous runs and coalesce
   well (counted by the memory model, not assumed).

Number of passes: ``key_bits / digit_bits`` — 8 for 32-bit keys, 16 for 64-bit
keys with the default 4-bit digit. That doubling, at roughly constant cost per
pass, is what Figure 4 measures.

Float keys are supported through the standard order-preserving bit flip
(sign bit XOR for positives, full complement for negatives), charged as one
extra instruction per element per pass.

The two library variants are modelled as parameterisations of the same engine:
the CUDPP variant uses the leaner per-element constants of the dedicated
CUDPP 1.x kernels, the Thrust variant carries slightly more per-pass overhead
but accepts 64-bit keys, matching how the two libraries behaved in the paper's
measurements (CUDPP a bit faster on 32-bit inputs; Thrust the only 64-bit
option).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..gpu.block import BlockContext
from ..gpu.device import DeviceSpec, TESLA_C1060
from ..gpu.errors import UnsupportedInputError
from ..gpu.grid import grid_for
from ..gpu.kernel import KernelLauncher
from ..gpu.memory import DeviceArray
from ..primitives.histogram import block_histogram
from ..primitives.scan import device_exclusive_scan
from ..core.base import GpuSorter, SortResult
from ..core.scatter_kernel import local_bucket_ranks

#: Default digit width used by both library variants in 2009/2010.
DEFAULT_DIGIT_BITS = 4

#: Per-element instruction constants distinguishing the two library variants.
_VARIANT_INSTR = {
    # (histogram pass, scatter pass) extra instructions per element
    "cudpp": (6.0, 10.0),
    "thrust": (8.0, 13.0),
}


def float32_to_ordered_uint32(keys: np.ndarray) -> np.ndarray:
    """Map float32 keys to uint32 so that unsigned order equals float order."""
    bits = keys.astype(np.float32).view(np.uint32)
    mask = np.where(bits & np.uint32(0x80000000),
                    np.uint32(0xFFFFFFFF), np.uint32(0x80000000))
    return bits ^ mask


def ordered_uint32_to_float32(bits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`float32_to_ordered_uint32`."""
    bits = bits.astype(np.uint32)
    mask = np.where(bits & np.uint32(0x80000000),
                    np.uint32(0x80000000), np.uint32(0xFFFFFFFF))
    return (bits ^ mask).view(np.float32)


def _digit_of(keys: np.ndarray, shift: int, digit_bits: int) -> np.ndarray:
    mask = (1 << digit_bits) - 1
    return ((keys.astype(np.uint64) >> np.uint64(shift)) & np.uint64(mask)).astype(np.int64)


def _radix_histogram_kernel(
    ctx: BlockContext, keys: DeviceArray, hist: DeviceArray,
    shift: int, digit_bits: int, n: int, num_blocks: int, extra_instr: float,
) -> None:
    start, end = ctx.tile_bounds(n)
    radix = 1 << digit_bits
    if end <= start:
        ctx.store(hist, np.arange(radix) * num_blocks + ctx.block_id,
                  np.zeros(radix, dtype=np.int64))
        return
    tile = ctx.read_range(keys, start, end - start)
    digits = _digit_of(tile, shift, digit_bits)
    ctx.charge_per_element(tile.size, extra_instr)
    counts = block_histogram(ctx, digits, radix, counter_groups=4)
    # local shared-memory split of the tile by digit (Satish et al.): charged
    # as digit_bits 1-bit split passes over the tile
    ctx.charge_per_element(tile.size, 2.0 * digit_bits)
    ctx.counters.shared_bytes_accessed += 2 * int(tile.nbytes)
    ctx.store(hist, np.arange(radix) * num_blocks + ctx.block_id, counts)


def _radix_scatter_kernel(
    ctx: BlockContext,
    src_keys: DeviceArray, src_values: Optional[DeviceArray],
    dst_keys: DeviceArray, dst_values: Optional[DeviceArray],
    offsets: DeviceArray,
    shift: int, digit_bits: int, n: int, num_blocks: int, extra_instr: float,
) -> None:
    start, end = ctx.tile_bounds(n)
    if end <= start:
        return
    tile = ctx.read_range(src_keys, start, end - start)
    vals = ctx.read_range(src_values, start, end - start) if src_values is not None else None
    digits = _digit_of(tile, shift, digit_bits)
    ctx.charge_per_element(tile.size, extra_instr)

    # Process the tile in digit order (the local split performed in shared
    # memory by the histogram kernel): scattered writes then form contiguous
    # runs per digit and coalesce well.
    order = np.argsort(digits, kind="stable")
    tile_sorted = tile[order]
    digits_sorted = digits[order]
    ranks = local_bucket_ranks(digits_sorted)
    base = ctx.load(offsets, digits_sorted * num_blocks + ctx.block_id)
    positions = base + ranks
    ctx.store(dst_keys, positions, tile_sorted)
    if vals is not None and dst_values is not None:
        ctx.store(dst_values, positions, vals[order])


class RadixSorter(GpuSorter):
    """Scan-based LSD radix sort, parameterised as the CUDPP or Thrust variant."""

    supports_values = True

    def __init__(self, device: DeviceSpec = TESLA_C1060, variant: str = "thrust",
                 digit_bits: int = DEFAULT_DIGIT_BITS,
                 block_threads: int = 256, elements_per_thread: int = 4):
        super().__init__(device)
        if variant not in _VARIANT_INSTR:
            raise ValueError(f"unknown radix variant {variant!r}; expected one of "
                             f"{sorted(_VARIANT_INSTR)}")
        if digit_bits < 1 or digit_bits > 16:
            raise ValueError(f"digit_bits must be in [1, 16], got {digit_bits}")
        self.variant = variant
        self.digit_bits = digit_bits
        self.block_threads = block_threads
        self.elements_per_thread = elements_per_thread
        self.name = f"{variant} radix"
        # CUDPP's radix sort only shipped 32-bit key support; Thrust is the
        # 64-bit-capable implementation the paper uses in Figure 4.
        if variant == "cudpp":
            self.supported_key_dtypes = (np.dtype(np.uint32), np.dtype(np.float32))
        else:
            self.supported_key_dtypes = (
                np.dtype(np.uint32), np.dtype(np.uint64), np.dtype(np.float32)
            )

    # ------------------------------------------------------------------ sort
    def _sort_impl(self, keys: np.ndarray, values: Optional[np.ndarray]) -> SortResult:
        launcher = KernelLauncher(self.device)
        n = int(keys.size)
        original_dtype = keys.dtype

        is_float = np.issubdtype(keys.dtype, np.floating)
        if is_float:
            work_keys = float32_to_ordered_uint32(keys)
            key_bits = 32
        else:
            work_keys = np.asarray(keys)
            key_bits = work_keys.dtype.itemsize * 8

        hist_instr, scatter_instr = _VARIANT_INSTR[self.variant]
        radix = 1 << self.digit_bits
        passes = -(-key_bits // self.digit_bits)

        buf_keys = [launcher.gmem.from_host(work_keys, name="radix_keys_a"),
                    launcher.gmem.alloc(n, work_keys.dtype, name="radix_keys_b")]
        buf_values = [None, None]
        if values is not None:
            buf_values = [launcher.gmem.from_host(values, name="radix_values_a"),
                          launcher.gmem.alloc(n, values.dtype, name="radix_values_b")]

        launch_cfg = grid_for(n, self.block_threads, self.elements_per_thread)
        num_blocks = launch_cfg.grid_dim
        src = 0
        for pass_index in range(passes):
            shift = pass_index * self.digit_bits
            dst = 1 - src
            hist = launcher.gmem.alloc(radix * num_blocks, np.int64, name="radix_hist")
            launcher.launch(
                _radix_histogram_kernel, launch_cfg, buf_keys[src], hist,
                shift, self.digit_bits, n, num_blocks,
                hist_instr + (1.0 if is_float else 0.0),
                problem_size=n, phase="radix_histogram", name="radix_histogram",
            )
            offsets = device_exclusive_scan(launcher, hist, radix * num_blocks,
                                            phase="radix_scan")
            launcher.launch(
                _radix_scatter_kernel, launch_cfg, buf_keys[src], buf_values[src],
                buf_keys[dst], buf_values[dst], offsets,
                shift, self.digit_bits, n, num_blocks, scatter_instr,
                problem_size=n, phase="radix_scatter", name="radix_scatter",
            )
            launcher.gmem.free(hist)
            launcher.gmem.free(offsets)
            src = dst

        out_keys = buf_keys[src].to_host()
        if is_float:
            out_keys = ordered_uint32_to_float32(out_keys).astype(original_dtype)
        return SortResult(
            keys=out_keys,
            values=None if buf_values[src] is None else buf_values[src].to_host(),
            trace=launcher.trace,
            algorithm=self.name,
            device=self.device,
            stats={"passes": passes, "digit_bits": self.digit_bits,
                   "variant": self.variant, "key_bits": key_bits},
        )


def cudpp_radix(device: DeviceSpec = TESLA_C1060, **kwargs) -> RadixSorter:
    """The CUDPP radix sort preset (32-bit keys only)."""
    return RadixSorter(device=device, variant="cudpp", **kwargs)


def thrust_radix(device: DeviceSpec = TESLA_C1060, **kwargs) -> RadixSorter:
    """The Thrust radix sort preset (32- and 64-bit keys)."""
    return RadixSorter(device=device, variant="thrust", **kwargs)


__all__ = [
    "RadixSorter",
    "cudpp_radix",
    "thrust_radix",
    "float32_to_ordered_uint32",
    "ordered_uint32_to_float32",
    "DEFAULT_DIGIT_BITS",
]
