"""Registry mapping algorithm names to sorter factories.

The experiment harness refers to algorithms by the names used in the paper's
figure legends ("sample", "thrust merge", "thrust radix", "cudpp radix",
"quick", "bbsort", "hybrid"); this module resolves those names to configured
sorter instances for a given device.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.config import SampleSortConfig
from ..core.sample_sort import SampleSorter
from ..gpu.device import DeviceSpec, TESLA_C1060
from .bbsort import BbSorter
from .gpu_quicksort import GpuQuicksortSorter
from .hybrid_sort import HybridSorter
from .radix import RadixSorter
from .thrust_merge import ThrustMergeSorter

SorterFactory = Callable[..., object]


def _make_sample(device: DeviceSpec, config: Optional[SampleSortConfig] = None,
                 **kwargs) -> SampleSorter:
    return SampleSorter(device=device, config=config, **kwargs)


def _make_thrust_merge(device: DeviceSpec, **kwargs) -> ThrustMergeSorter:
    return ThrustMergeSorter(device=device, **kwargs)


def _make_thrust_radix(device: DeviceSpec, **kwargs) -> RadixSorter:
    return RadixSorter(device=device, variant="thrust", **kwargs)


def _make_cudpp_radix(device: DeviceSpec, **kwargs) -> RadixSorter:
    return RadixSorter(device=device, variant="cudpp", **kwargs)


def _make_quick(device: DeviceSpec, **kwargs) -> GpuQuicksortSorter:
    return GpuQuicksortSorter(device=device, **kwargs)


def _make_bbsort(device: DeviceSpec, **kwargs) -> BbSorter:
    return BbSorter(device=device, **kwargs)


def _make_hybrid(device: DeviceSpec, **kwargs) -> HybridSorter:
    return HybridSorter(device=device, **kwargs)


#: The algorithm names used by the paper's figures.
SORTER_FACTORIES: dict[str, SorterFactory] = {
    "sample": _make_sample,
    "thrust merge": _make_thrust_merge,
    "thrust radix": _make_thrust_radix,
    "cudpp radix": _make_cudpp_radix,
    "quick": _make_quick,
    "bbsort": _make_bbsort,
    "hybrid": _make_hybrid,
}

#: Aliases accepted by :func:`make_sorter` (command-line convenience).
ALIASES: dict[str, str] = {
    "samplesort": "sample",
    "sample-sort": "sample",
    "merge": "thrust merge",
    "thrust-merge": "thrust merge",
    "radix": "thrust radix",
    "thrust-radix": "thrust radix",
    "cudpp-radix": "cudpp radix",
    "quicksort": "quick",
    "gpu-quicksort": "quick",
    "hybridsort": "hybrid",
}


def available_sorters() -> list[str]:
    """Canonical algorithm names, in the paper's legend order."""
    return list(SORTER_FACTORIES)


def resolve_name(name: str) -> str:
    """Resolve an alias to a canonical sorter name."""
    key = name.strip().lower()
    key = ALIASES.get(key, key)
    if key not in SORTER_FACTORIES:
        raise KeyError(
            f"unknown sorter {name!r}; available: {available_sorters()}"
        )
    return key


def make_sorter(name: str, device: DeviceSpec = TESLA_C1060, **kwargs):
    """Instantiate a sorter by (possibly aliased) name."""
    return SORTER_FACTORIES[resolve_name(name)](device=device, **kwargs)


__all__ = [
    "SORTER_FACTORIES",
    "ALIASES",
    "available_sorters",
    "resolve_name",
    "make_sorter",
]
