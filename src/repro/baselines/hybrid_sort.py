"""Hybrid sort baseline (Sintorn & Assarsson 2008) — float keys only.

"One of the first GPU-based two-way merge sort algorithms appeared as the
second phase of a two step approach by Sintorn and Assarsson. ... To improve
parallelism in the last iterations, it initially partitions the input into
sufficiently many tiles assuming that the keys are uniformly distributed" (§3).
The paper's Figure 5 includes hybrid sort "on floats, since it is the only key
type accepted by this implementation", and reports that

* its performance "significantly degrades" on the Bucket and Staggered
  distributions (the uniformity assumption breaks), and
* it *crashes* on DeterministicDuplicates.

The reproduction models the published two-step structure:

1. a uniformity-assuming bucket split into ``n / target_bucket`` buckets (the
   shared engine in :mod:`repro.baselines.uniform_bucket`), followed by
2. a per-bucket merge sort: each bucket is cut into 4-element runs that are
   merge-joined in shared memory; buckets larger than the size the algorithm
   was designed for fall back to a global-memory sorting network, which is what
   makes skewed inputs slow,

and reproduces the crash: a bucket larger than the implementation's fixed
per-bucket capacity raises :class:`~repro.gpu.errors.AlgorithmFailure`, which
the experiment harness records as a DNF exactly like the paper records the
crash.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..gpu.block import BlockContext
from ..gpu.device import DeviceSpec, TESLA_C1060
from ..gpu.errors import AlgorithmFailure
from ..gpu.grid import LaunchConfig
from ..gpu.kernel import KernelLauncher
from ..gpu.memory import DeviceArray
from ..primitives.sorting_networks import estimate_network_cost
from ..core.base import GpuSorter, SortResult
from .uniform_bucket import run_uniform_distribution

#: Bucket size the first phase aims for (elements per merge-sort list).
TARGET_BUCKET = 512
#: Buckets beyond this multiple of the target make the implementation fail,
#: reproducing the paper's observed crash on DeterministicDuplicates.
CRASH_FACTOR = 32


def _bucket_merge_sort_kernel(
    ctx: BlockContext,
    keys: DeviceArray, values: Optional[DeviceArray],
    starts: np.ndarray, sizes: np.ndarray, shared_capacity: int,
) -> None:
    b = ctx.block_id
    start = int(starts[b])
    size = int(sizes[b])
    if size <= 1:
        return
    tile_keys = ctx.read_range(keys, start, size)
    tile_values = ctx.read_range(values, start, size) if values is not None else None

    if size <= shared_capacity:
        # The designed-for case: the bucket is merge sorted in shared memory.
        ctx.counters.shared_bytes_accessed += int(tile_keys.nbytes)
        merge_levels = int(np.ceil(np.log2(max(size / 4.0, 2.0))))
        ctx.charge_per_element(size, 4.0 + 2.0 * merge_levels)
        sorted_keys = np.sort(tile_keys, kind="stable")
        sorted_values = None
        if tile_values is not None:
            order = np.argsort(tile_keys, kind="stable")
            sorted_values = tile_values[order]
    else:
        # Oversized bucket: the implementation falls back to running the merge
        # network out of global memory — every network stage streams the bucket
        # through DRAM, which is what makes skewed inputs slow. The network's
        # cost is charged from the closed-form stage/comparator counts.
        stats = estimate_network_cost(size, kind="odd_even")
        ctx.charge_instructions(stats.instructions)
        bytes_per_stage = int(tile_keys.nbytes)
        ctx.charge_streaming_traffic(
            bytes_read=stats.stages * bytes_per_stage,
            bytes_written=stats.stages * bytes_per_stage,
        )
        sorted_keys = np.sort(tile_keys, kind="stable")
        sorted_values = None
        if tile_values is not None:
            order = np.argsort(tile_keys, kind="stable")
            sorted_values = tile_values[order]

    ctx.write_range(keys, start, sorted_keys)
    if values is not None and sorted_values is not None:
        ctx.write_range(values, start, sorted_values)


class HybridSorter(GpuSorter):
    """Sintorn–Assarsson hybrid sort (uniform bucket split + merge sort)."""

    name = "hybrid"
    supports_values = True
    supported_key_dtypes = (np.dtype(np.float32),)

    def __init__(self, device: DeviceSpec = TESLA_C1060,
                 target_bucket: int = TARGET_BUCKET,
                 crash_factor: int = CRASH_FACTOR,
                 block_threads: int = 256):
        super().__init__(device)
        if target_bucket < 4:
            raise ValueError(f"target_bucket must be at least 4, got {target_bucket}")
        self.target_bucket = target_bucket
        self.crash_factor = crash_factor
        self.block_threads = block_threads

    def _sort_impl(self, keys: np.ndarray, values: Optional[np.ndarray]) -> SortResult:
        launcher = KernelLauncher(self.device)
        n = int(keys.size)
        num_buckets = max(1, n // self.target_bucket)

        src_keys = launcher.gmem.from_host(keys, name="hybrid_keys_in")
        dst_keys = launcher.gmem.alloc(n, keys.dtype, name="hybrid_keys_out")
        src_values = dst_values = None
        if values is not None:
            src_values = launcher.gmem.from_host(values, name="hybrid_values_in")
            dst_values = launcher.gmem.alloc(n, values.dtype, name="hybrid_values_out")

        layout = run_uniform_distribution(
            launcher, src_keys, src_values, dst_keys, dst_values, num_buckets,
            block_threads=self.block_threads, phase_prefix="hybrid_split",
        )

        crash_limit = self.crash_factor * self.target_bucket
        if num_buckets > 1 and layout.largest_bucket > crash_limit:
            raise AlgorithmFailure(
                f"hybrid sort: bucket of {layout.largest_bucket} elements exceeds the "
                f"implementation's per-bucket capacity of {crash_limit} "
                f"(skew {layout.skew:.1f}x); the published implementation crashes on "
                f"such inputs (observed in the paper on DeterministicDuplicates)"
            )

        occupied = layout.bucket_sizes > 0
        starts = layout.bucket_starts[occupied]
        sizes = layout.bucket_sizes[occupied]
        if sizes.size:
            order = np.argsort(sizes)[::-1]
            starts, sizes = starts[order], sizes[order]
            cfg = LaunchConfig(
                grid_dim=int(sizes.size),
                block_dim=min(self.block_threads, self.device.max_threads_per_block),
                elements_per_thread=max(1, -(-int(sizes.max()) // self.block_threads)),
            )
            shared_capacity = self.device.shared_mem_per_sm // (keys.dtype.itemsize + 4)
            launcher.launch(
                _bucket_merge_sort_kernel, cfg, dst_keys, dst_values,
                starts, sizes, shared_capacity,
                problem_size=int(sizes.sum()), phase="hybrid_bucket_sort",
                name="hybrid_bucket_sort",
            )

        return SortResult(
            keys=dst_keys.to_host(),
            values=None if dst_values is None else dst_values.to_host(),
            trace=launcher.trace,
            algorithm=self.name,
            device=self.device,
            stats={"num_buckets": num_buckets, "largest_bucket": layout.largest_bucket,
                   "bucket_skew": layout.skew},
        )


__all__ = ["HybridSorter", "TARGET_BUCKET", "CRASH_FACTOR"]
