"""bbsort baseline (Chen, Qin, Xie, Zhao, Heng 2009).

"Another recent approach is bbsort based on initial partitioning similar to
that of hybrid sort" (§3) — i.e. a bucket sort whose first phase maps each key
to a bucket by a linear projection of the key range, assuming near-uniform
keys, followed by sorting every bucket with a small fixed-size sorter.

The paper's findings that the reproduction must preserve (§6):

* on Uniform inputs "bbsort is competitive, but still outperformed" by sample
  sort (its distribution phase is cheaper per element — no search tree — but
  the per-bucket sorter is weaker);
* on the Bucket and Staggered distributions its performance "significantly
  degrades when compared to the uniform case";
* "on the Deterministic Duplicates input, bbsort becomes completely
  inefficient" — it does not crash (unlike hybrid sort) but ends up sorting one
  enormous bucket with a sorter designed for a few hundred elements.

bbsort accepts both float and integer keys (it only needs the linear
projection), unlike hybrid sort which the paper could only run on floats.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..gpu.block import BlockContext
from ..gpu.device import DeviceSpec, TESLA_C1060
from ..gpu.grid import LaunchConfig
from ..gpu.kernel import KernelLauncher
from ..gpu.memory import DeviceArray
from ..primitives.sorting_networks import bitonic_sort, estimate_network_cost
from ..core.base import GpuSorter, SortResult
from .uniform_bucket import run_uniform_distribution

#: Bucket size the distribution phase aims for.
TARGET_BUCKET = 256


def _bbsort_bucket_kernel(
    ctx: BlockContext,
    keys: DeviceArray, values: Optional[DeviceArray],
    starts: np.ndarray, sizes: np.ndarray, shared_capacity: int,
) -> None:
    b = ctx.block_id
    start = int(starts[b])
    size = int(sizes[b])
    if size <= 1:
        return
    tile_keys = ctx.read_range(keys, start, size)
    tile_values = ctx.read_range(values, start, size) if values is not None else None

    if size <= shared_capacity:
        ctx.counters.shared_bytes_accessed += int(tile_keys.nbytes)
        sorted_keys, sorted_values, _ = bitonic_sort(tile_keys, tile_values, ctx=ctx)
    else:
        # Oversized bucket (non-uniform input): the bitonic network runs out of
        # global memory, streaming the bucket once per stage — the "completely
        # inefficient" regime the paper observes on DeterministicDuplicates.
        stats = estimate_network_cost(size, kind="bitonic")
        ctx.charge_instructions(stats.instructions)
        bytes_per_stage = int(tile_keys.nbytes)
        ctx.charge_streaming_traffic(
            bytes_read=stats.stages * bytes_per_stage,
            bytes_written=stats.stages * bytes_per_stage,
        )
        sorted_keys = np.sort(tile_keys, kind="stable")
        sorted_values = None
        if tile_values is not None:
            order = np.argsort(tile_keys, kind="stable")
            sorted_values = tile_values[order]

    ctx.write_range(keys, start, sorted_keys)
    if values is not None and sorted_values is not None:
        ctx.write_range(values, start, sorted_values)


class BbSorter(GpuSorter):
    """bbsort: uniformity-assuming bucket distribution + per-bucket bitonic sort."""

    name = "bbsort"
    supports_values = True
    supported_key_dtypes = (
        np.dtype(np.uint32), np.dtype(np.float32), np.dtype(np.uint64)
    )

    def __init__(self, device: DeviceSpec = TESLA_C1060,
                 target_bucket: int = TARGET_BUCKET, block_threads: int = 256):
        super().__init__(device)
        if target_bucket < 4:
            raise ValueError(f"target_bucket must be at least 4, got {target_bucket}")
        self.target_bucket = target_bucket
        self.block_threads = block_threads

    def _sort_impl(self, keys: np.ndarray, values: Optional[np.ndarray]) -> SortResult:
        launcher = KernelLauncher(self.device)
        n = int(keys.size)
        num_buckets = max(1, n // self.target_bucket)

        src_keys = launcher.gmem.from_host(keys, name="bbsort_keys_in")
        dst_keys = launcher.gmem.alloc(n, keys.dtype, name="bbsort_keys_out")
        src_values = dst_values = None
        if values is not None:
            src_values = launcher.gmem.from_host(values, name="bbsort_values_in")
            dst_values = launcher.gmem.alloc(n, values.dtype, name="bbsort_values_out")

        layout = run_uniform_distribution(
            launcher, src_keys, src_values, dst_keys, dst_values, num_buckets,
            block_threads=self.block_threads, phase_prefix="bbsort_split",
        )

        occupied = layout.bucket_sizes > 0
        starts = layout.bucket_starts[occupied]
        sizes = layout.bucket_sizes[occupied]
        if sizes.size:
            order = np.argsort(sizes)[::-1]
            starts, sizes = starts[order], sizes[order]
            cfg = LaunchConfig(
                grid_dim=int(sizes.size),
                block_dim=min(self.block_threads, self.device.max_threads_per_block),
                elements_per_thread=max(1, -(-int(sizes.max()) // self.block_threads)),
            )
            shared_capacity = self.device.shared_mem_per_sm // (keys.dtype.itemsize + 4)
            launcher.launch(
                _bbsort_bucket_kernel, cfg, dst_keys, dst_values,
                starts, sizes, shared_capacity,
                problem_size=int(sizes.sum()), phase="bbsort_bucket_sort",
                name="bbsort_bucket_sort",
            )

        return SortResult(
            keys=dst_keys.to_host(),
            values=None if dst_values is None else dst_values.to_host(),
            trace=launcher.trace,
            algorithm=self.name,
            device=self.device,
            stats={"num_buckets": num_buckets, "largest_bucket": layout.largest_bucket,
                   "bucket_skew": layout.skew},
        )


__all__ = ["BbSorter", "TARGET_BUCKET"]
