"""Baseline GPU sorting algorithms the paper evaluates sample sort against.

All baselines run on the same :mod:`repro.gpu` simulator and implement the
:class:`~repro.core.base.GpuSorter` interface:

* :class:`ThrustMergeSorter` — two-way merge sort (Satish/Harris/Garland), the
  strongest published comparison sort at the time;
* :class:`RadixSorter` — scan-based LSD radix sort in its CUDPP and Thrust
  parameterisations (:func:`cudpp_radix`, :func:`thrust_radix`);
* :class:`GpuQuicksortSorter` — Cederman–Tsigas explicit-partition quicksort;
* :class:`HybridSorter` — Sintorn–Assarsson hybrid sort (float keys only);
* :class:`BbSorter` — bbsort (uniformity-assuming bucket sort).
"""

from .bbsort import BbSorter
from .gpu_quicksort import GpuQuicksortSorter
from .hybrid_sort import HybridSorter
from .radix import RadixSorter, cudpp_radix, thrust_radix
from .registry import (
    ALIASES,
    SORTER_FACTORIES,
    available_sorters,
    make_sorter,
    resolve_name,
)
from .thrust_merge import ThrustMergeSorter
from .uniform_bucket import BucketLayout, project_buckets, run_uniform_distribution

__all__ = [
    "BbSorter",
    "GpuQuicksortSorter",
    "HybridSorter",
    "RadixSorter",
    "cudpp_radix",
    "thrust_radix",
    "ThrustMergeSorter",
    "BucketLayout",
    "project_buckets",
    "run_uniform_distribution",
    "ALIASES",
    "SORTER_FACTORIES",
    "available_sorters",
    "make_sorter",
    "resolve_name",
]
