"""GPU quicksort baseline (Cederman & Tsigas, ESA 2008).

The paper compares against "a practical quicksort algorithm for graphics
processors" — an explicit-partitioning quicksort that, unlike the earlier
segmented-scan formulation, keeps the overhead low enough to be competitive.
Sample sort is reported to be "on average more than 2 times faster than
quicksort" on uniform 32-bit keys; the reason is structural: quicksort needs
an expected ``log2(n / cutoff)`` two-way partition passes over global memory
where sample sort needs ``log_k`` multi-way passes.

Simulator rendering of one partition level:

* the host (CPU) side of the algorithm maintains the work queue of sequences,
  exactly like the original (sequence boundaries and pivots live on the host),
* a single kernel per level streams over all active elements: each block reads
  its tile, compares against its sequence's pivot (predicated, no divergence
  cost beyond the comparison) and writes every element to its side of the
  partition; the destination indices come from the usual two-prefix-sum scheme,
  so writes are split into two contiguous streams per sequence — modelled by
  the scatter accounting of the memory system,
* the pivot is the midpoint of the sequence's minimum and maximum key (the
  original's choice), and sequences whose min equals max are complete,
* sequences at or below the shared-memory cutoff are finished by one block
  each with a bitonic sorting network (the original's small-case sorter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..gpu.block import BlockContext
from ..gpu.device import DeviceSpec, TESLA_C1060
from ..gpu.grid import LaunchConfig, grid_for
from ..gpu.kernel import KernelLauncher
from ..gpu.memory import DeviceArray
from ..primitives.sorting_networks import bitonic_sort
from ..core.base import GpuSorter, SortResult

#: Sequences at or below this many elements are sorted in shared memory.
DEFAULT_CUTOFF = 1024
#: Instructions per element per partition level (compare + offset bookkeeping).
PARTITION_INSTR = 7.0


@dataclass
class _Sequence:
    start: int
    size: int
    done: bool = False


def _partition_level_kernel(
    ctx: BlockContext,
    src_keys: DeviceArray, src_values: Optional[DeviceArray],
    dst_keys: DeviceArray, dst_values: Optional[DeviceArray],
    positions: DeviceArray, n_active: int, element_index: DeviceArray,
) -> None:
    """Stream one tile of the active elements to their partitioned positions."""
    start, end = ctx.tile_bounds(n_active)
    if end <= start:
        return
    src_idx = ctx.read_range(element_index, start, end - start)
    tile_keys = ctx.load(src_keys, src_idx)
    # The original performs a counting pass before the scatter pass (each block
    # first counts its elements on either side of the pivot to claim output
    # space with atomics, then re-reads and moves them), plus the per-sequence
    # min/max bookkeeping used for the next level's pivots.
    ctx.charge_streaming_traffic(bytes_read=int(tile_keys.nbytes), bytes_written=0)
    ctx.charge_per_element(tile_keys.size, PARTITION_INSTR + 4.0)
    ctx.counters.atomic_operations += max(1, tile_keys.size // 64)
    dst_idx = ctx.read_range(positions, start, end - start)
    ctx.store(dst_keys, dst_idx, tile_keys)
    if src_values is not None and dst_values is not None:
        tile_values = ctx.load(src_values, src_idx)
        ctx.store(dst_values, dst_idx, tile_values)


def _small_sort_kernel(
    ctx: BlockContext,
    keys: DeviceArray, values: Optional[DeviceArray],
    starts: np.ndarray, sizes: np.ndarray,
) -> None:
    b = ctx.block_id
    start = int(starts[b])
    size = int(sizes[b])
    if size <= 1:
        return
    tile_keys = ctx.read_range(keys, start, size)
    tile_values = ctx.read_range(values, start, size) if values is not None else None
    ctx.counters.shared_bytes_accessed += int(tile_keys.nbytes)
    sorted_keys, sorted_values, _ = bitonic_sort(tile_keys, tile_values, ctx=ctx)
    ctx.write_range(keys, start, sorted_keys)
    if values is not None and sorted_values is not None:
        ctx.write_range(values, start, sorted_values)


class GpuQuicksortSorter(GpuSorter):
    """Cederman–Tsigas explicit-partition GPU quicksort on the simulator."""

    name = "quick"
    supports_values = True
    supported_key_dtypes = None

    def __init__(self, device: DeviceSpec = TESLA_C1060, cutoff: int = DEFAULT_CUTOFF,
                 block_threads: int = 256, elements_per_thread: int = 4,
                 max_levels: int = 64):
        super().__init__(device)
        if cutoff < 2:
            raise ValueError(f"cutoff must be at least 2, got {cutoff}")
        self.cutoff = cutoff
        self.block_threads = block_threads
        self.elements_per_thread = elements_per_thread
        self.max_levels = max_levels

    # ------------------------------------------------------------------ sort
    def _sort_impl(self, keys: np.ndarray, values: Optional[np.ndarray]) -> SortResult:
        launcher = KernelLauncher(self.device)
        n = int(keys.size)

        dev_keys = launcher.gmem.from_host(keys, name="quick_keys")
        dev_values = launcher.gmem.from_host(values, name="quick_values") if values is not None else None

        sequences: list[_Sequence] = [_Sequence(0, n)]
        levels = 0
        while levels < self.max_levels:
            active = [s for s in sequences if not s.done and s.size > self.cutoff]
            if not active:
                break
            levels += 1
            next_sequences: list[_Sequence] = [s for s in sequences if s.done or s.size <= self.cutoff]

            # Host-side pivot selection and destination computation for every
            # active sequence; the device-side work is charged by the kernel.
            element_index_parts = []
            position_parts = []
            for seq in active:
                seg = dev_keys.data[seq.start : seq.start + seq.size]
                lo = seg.min()
                hi = seg.max()
                if lo == hi:
                    seq.done = True
                    next_sequences.append(seq)
                    continue
                if np.issubdtype(seg.dtype, np.floating):
                    pivot = lo + (hi - lo) / 2.0
                else:
                    pivot = seg.dtype.type(int(lo) + (int(hi) - int(lo)) // 2)
                mask = seg <= pivot
                left_count = int(np.count_nonzero(mask))
                dest = np.empty(seq.size, dtype=np.int64)
                dest[mask] = seq.start + np.arange(left_count)
                dest[~mask] = seq.start + left_count + np.arange(seq.size - left_count)
                element_index_parts.append(seq.start + np.arange(seq.size, dtype=np.int64))
                position_parts.append(dest)
                next_sequences.append(_Sequence(seq.start, left_count))
                next_sequences.append(_Sequence(seq.start + left_count,
                                                seq.size - left_count))

            if not element_index_parts:
                sequences = next_sequences
                continue

            element_index = np.concatenate(element_index_parts)
            positions = np.concatenate(position_parts)
            n_active = int(element_index.size)
            idx_buf = launcher.gmem.from_host(element_index, name="quick_srcidx")
            pos_buf = launcher.gmem.from_host(positions, name="quick_positions")
            # Partition writes go to an auxiliary buffer and are copied back by
            # the next level's reads; modelling it in place keeps the traffic
            # identical (read n + write n per level).
            aux_keys = launcher.gmem.alloc(n, dev_keys.dtype, name="quick_aux_keys")
            aux_keys.data[:] = dev_keys.data
            aux_values = None
            if dev_values is not None:
                aux_values = launcher.gmem.alloc(n, dev_values.dtype, name="quick_aux_values")
                aux_values.data[:] = dev_values.data

            cfg = grid_for(n_active, self.block_threads, self.elements_per_thread)
            launcher.launch(
                _partition_level_kernel, cfg, dev_keys, dev_values,
                aux_keys, aux_values, pos_buf, n_active, idx_buf,
                problem_size=n_active, phase="quick_partition",
                name=f"quick_partition_{levels}",
            )
            dev_keys.data[:] = aux_keys.data
            if dev_values is not None and aux_values is not None:
                dev_values.data[:] = aux_values.data
            launcher.gmem.free(aux_keys)
            if aux_values is not None:
                launcher.gmem.free(aux_values)
            launcher.gmem.free(idx_buf)
            launcher.gmem.free(pos_buf)
            sequences = next_sequences

        # Small-case sorting: one block per remaining unsorted sequence.
        pending = [s for s in sequences if not s.done and s.size > 1]
        if pending:
            pending.sort(key=lambda s: s.size, reverse=True)
            starts = np.array([s.start for s in pending], dtype=np.int64)
            sizes = np.array([s.size for s in pending], dtype=np.int64)
            cfg = LaunchConfig(
                grid_dim=len(pending),
                block_dim=min(self.block_threads, self.device.max_threads_per_block),
                elements_per_thread=max(1, -(-int(sizes.max()) // self.block_threads)),
            )
            launcher.launch(
                _small_sort_kernel, cfg, dev_keys, dev_values, starts, sizes,
                problem_size=int(sizes.sum()), phase="quick_small_sort",
                name="quick_small_sort",
            )

        return SortResult(
            keys=dev_keys.to_host(),
            values=None if dev_values is None else dev_values.to_host(),
            trace=launcher.trace,
            algorithm=self.name,
            device=self.device,
            stats={"partition_levels": levels, "cutoff": self.cutoff,
                   "small_sequences": len(pending)},
        )


__all__ = ["GpuQuicksortSorter", "DEFAULT_CUTOFF"]
