"""Block scheduling and occupancy model.

GT200 SMs hide memory latency by keeping many warps resident and switching
between them at zero cost. How many blocks fit on one SM (the *occupancy*) is
limited by threads, shared memory and the per-SM block limit. The paper chooses
``t = 256`` threads and ``ell = 8`` elements per thread explicitly as "a
compromise between the parallelism exposed by the algorithm, the amount of data
written in the second phase and memory latency in the fourth phase" — an
occupancy/traffic trade-off the simulator reproduces.

The scheduler answers two questions the timing model needs:

* how many blocks are resident per SM (determines how well latency is hidden),
* how many *waves* of blocks the grid needs (a grid much larger than the chip
  runs in several waves; a grid smaller than the chip leaves SMs idle, which is
  why sorting rates in the paper drop for small n).
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec
from .grid import LaunchConfig


@dataclass(frozen=True)
class Occupancy:
    """Occupancy of one kernel launch on one device."""

    blocks_per_sm: int
    resident_warps_per_sm: int
    max_warps_per_sm: int
    waves: int
    active_sms_last_wave: int

    @property
    def warp_occupancy(self) -> float:
        """Resident warps divided by the SM's warp capacity (0..1]."""
        if self.max_warps_per_sm == 0:
            return 0.0
        return min(1.0, self.resident_warps_per_sm / self.max_warps_per_sm)

    @property
    def latency_hiding(self) -> float:
        """Heuristic latency-hiding factor in (0, 1].

        With few resident warps the SM stalls on memory latency; with ~50 % or
        more warp occupancy GT200 typically hides global-memory latency for
        streaming kernels. The factor saturates accordingly.
        """
        return min(1.0, 0.25 + 1.5 * self.warp_occupancy)


def occupancy_for(device: DeviceSpec, launch: LaunchConfig,
                  regs_per_thread: int = 16) -> Occupancy:
    """Compute occupancy for a launch on a device.

    ``regs_per_thread`` defaults to a typical value for the paper's kernels;
    register pressure only rarely becomes the limiting factor for them, but the
    limit is modelled so that configurations like very large unrolled traversals
    can be studied.
    """
    warp_size = device.warp_size
    threads = launch.block_dim
    warps_per_block = -(-threads // warp_size)

    # Limits: threads, blocks, shared memory, registers.
    limit_threads = device.max_threads_per_sm // threads if threads else 0
    limit_blocks = device.max_blocks_per_sm
    if launch.shared_mem_bytes > 0:
        limit_shared = device.shared_mem_per_sm // launch.shared_mem_bytes
    else:
        limit_shared = device.max_blocks_per_sm
    regs_per_block = regs_per_thread * threads
    if regs_per_block > 0:
        limit_regs = device.registers_per_sm // regs_per_block
    else:
        limit_regs = device.max_blocks_per_sm

    blocks_per_sm = max(0, min(limit_threads, limit_blocks, limit_shared, limit_regs))
    if blocks_per_sm == 0:
        # The block does not fit at all; the launcher will have raised for hard
        # violations, but borderline register pressure degrades to one block.
        blocks_per_sm = 1

    resident_warps = blocks_per_sm * warps_per_block
    chip_blocks = blocks_per_sm * device.sm_count
    waves = max(1, -(-launch.grid_dim // chip_blocks))
    last_wave_blocks = launch.grid_dim - (waves - 1) * chip_blocks
    active_sms_last_wave = min(device.sm_count, -(-last_wave_blocks // blocks_per_sm))

    return Occupancy(
        blocks_per_sm=blocks_per_sm,
        resident_warps_per_sm=resident_warps,
        max_warps_per_sm=device.max_warps_per_sm,
        waves=waves,
        active_sms_last_wave=active_sms_last_wave,
    )


def chip_utilisation(device: DeviceSpec, launch: LaunchConfig,
                     regs_per_thread: int = 16) -> float:
    """Fraction of the chip kept busy over the whole launch, in (0, 1].

    Small grids (few blocks) cannot occupy all 30 SMs; this is the effect that
    makes every curve in the paper's figures rise with n before flattening.
    """
    occ = occupancy_for(device, launch, regs_per_thread)
    full_waves = occ.waves - 1
    total_sm_waves = occ.waves * device.sm_count
    busy_sm_waves = full_waves * device.sm_count + occ.active_sms_last_wave
    return max(1.0 / (device.sm_count * occ.max_warps_per_sm),
               busy_sm_waves / total_sm_waves)


def per_segment_utilisation(device: DeviceSpec, segment_sizes, block_dim: int,
                            elements_per_thread: int = 1,
                            regs_per_thread: int = 16) -> float:
    """Mean chip utilisation had every segment been launched on its own.

    A level-batched launch covers all same-depth segments with one grid, so a
    level with many small buckets still fills the chip — unlike one launch per
    segment, where each tiny grid leaves most SMs idle. The engine records
    :func:`chip_utilisation` of the fused grid next to this number per level;
    their gap quantifies the batching win the paper's single-kernel-per-phase
    structure buys.
    """
    from .grid import grid_for

    sizes = [int(s) for s in segment_sizes if int(s) > 0]
    if not sizes:
        return 0.0
    total = 0.0
    for size in sizes:
        launch = grid_for(size, block_dim, elements_per_thread)
        total += chip_utilisation(device, launch, regs_per_thread)
    return total / len(sizes)


__all__ = [
    "Occupancy",
    "occupancy_for",
    "chip_utilisation",
    "per_segment_utilisation",
]
