"""Device time model: counted work -> predicted kernel time.

The reproduction has no CUDA hardware, so absolute times are *predicted* from
the event counters the simulator collects. The model is deliberately simple and
shared by every algorithm so comparisons stay apples-to-apples:

* **Memory time** — issued global transactions times the transaction size,
  divided by the sustained bandwidth. Uncoalesced access patterns issue more
  transactions for the same requested bytes, so they automatically see a lower
  effective bandwidth, exactly the Section 2 argument.
* **Compute time** — dynamic scalar instructions divided by the chip's issue
  rate, inflated by warp divergence (a diverged branch executes both sides) and
  atomic serialisation, and by shared-memory bank conflicts.
* **Overlap** — with good occupancy the SM overlaps memory latency with compute
  from other warps, so kernel time approaches ``max(mem, compute)``. With poor
  occupancy (small grids, heavy shared-memory usage) the two serialize. The
  overlap factor interpolates using the scheduler's latency-hiding estimate and
  the chip utilisation.
* **Launch overhead** — a fixed few microseconds per kernel; this is what makes
  sorting rates collapse for very small inputs in all of the paper's figures.

Absolute numbers from this model are calibration-quality, not silicon-quality;
``EXPERIMENTS.md`` compares shapes, orderings and ratios against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from .counters import KernelCounters
from .device import DeviceSpec
from .grid import LaunchConfig
from .scheduler import chip_utilisation, occupancy_for


@dataclass(frozen=True)
class KernelTime:
    """Predicted timing breakdown of one kernel launch, in microseconds."""

    memory_us: float
    compute_us: float
    overhead_us: float
    overlap: float

    @property
    def total_us(self) -> float:
        hi = max(self.memory_us, self.compute_us)
        lo = min(self.memory_us, self.compute_us)
        return hi + (1.0 - self.overlap) * lo + self.overhead_us

    @property
    def bound(self) -> str:
        """Which resource dominates this kernel ("memory" or "compute")."""
        return "memory" if self.memory_us >= self.compute_us else "compute"


@dataclass(frozen=True)
class FusedKernelTime(KernelTime):
    """Timing of one persistent (fused) launch built from several phase bodies.

    The constituent launches were each predicted individually, with their own
    occupancy/overlap factors; re-deriving an overlap from the *summed*
    memory/compute totals would change the work estimate. So the fused record
    carries the exact summed work of its constituents (``work_us`` — each
    constituent's ``total_us`` minus its launch overhead) and overrides
    ``total_us`` to ``work_us + overhead_us``, where the overhead is one
    kernel-launch cost plus one :attr:`DeviceSpec.device_sync_us` per fused
    phase boundary. ``memory_us``/``compute_us`` keep the constituent sums so
    :attr:`bound` still reports the dominating resource.
    """

    work_us: float = 0.0

    @property
    def total_us(self) -> float:
        return self.work_us + self.overhead_us


class DeviceTimeModel:
    """Maps :class:`KernelCounters` to predicted time on a :class:`DeviceSpec`."""

    #: Extra cycles charged per serialised atomic replay.
    ATOMIC_REPLAY_CYCLES = 4.0
    #: Extra cycles charged per shared-memory bank conflict.
    BANK_CONFLICT_CYCLES = 2.0
    #: Cycles charged per executed barrier per resident warp.
    BARRIER_CYCLES = 8.0
    #: Instructions charged for each divergent warp branch (both sides replay).
    DIVERGENT_BRANCH_PENALTY = 24.0

    def __init__(self, device: DeviceSpec):
        self.device = device

    # ----------------------------------------------------------------- pieces
    def memory_time_us(self, counters: KernelCounters) -> float:
        """Time to move the issued transactions at sustained bandwidth."""
        device = self.device
        issued_bytes = counters.global_transactions * device.mem_transaction_bytes
        # A transaction never moves less than the requested payload.
        issued_bytes = max(issued_bytes, counters.global_bytes_total)
        return issued_bytes / device.bytes_per_us

    def compute_time_us(self, counters: KernelCounters, utilisation: float = 1.0) -> float:
        """Time to retire the counted instructions on the busy fraction of the chip."""
        device = self.device
        effective_instructions = (
            counters.instructions
            + counters.atomic_operations
            + counters.atomic_conflicts * self.ATOMIC_REPLAY_CYCLES
            + counters.shared_bank_conflicts * self.BANK_CONFLICT_CYCLES
            + counters.divergent_branches * self.DIVERGENT_BRANCH_PENALTY
            + counters.barriers * self.BARRIER_CYCLES
            # shared memory accesses retire roughly like ALU instructions
            + counters.shared_bytes_accessed / 4.0
        )
        rate = device.peak_instruction_rate * max(utilisation, 1e-6)
        return effective_instructions / rate

    # ------------------------------------------------------------------ kernel
    def kernel_time(
        self,
        counters: KernelCounters,
        launch: LaunchConfig | None = None,
        regs_per_thread: int = 16,
    ) -> KernelTime:
        """Predict the execution time of one kernel launch."""
        if launch is not None:
            occ = occupancy_for(self.device, launch, regs_per_thread)
            utilisation = chip_utilisation(self.device, launch, regs_per_thread)
            overlap = occ.latency_hiding * min(1.0, 0.5 + 0.5 * utilisation)
        else:
            utilisation = 1.0
            overlap = 0.85
        mem = self.memory_time_us(counters)
        comp = self.compute_time_us(counters, utilisation)
        launches = max(1, counters.kernel_launches)
        overhead = launches * self.device.kernel_launch_overhead_us
        return KernelTime(
            memory_us=mem, compute_us=comp, overhead_us=overhead, overlap=overlap
        )

    def time_us(self, counters: KernelCounters, launch: LaunchConfig | None = None,
                regs_per_thread: int = 16) -> float:
        """Convenience: total predicted microseconds for one launch."""
        return self.kernel_time(counters, launch, regs_per_thread).total_us


__all__ = ["KernelTime", "FusedKernelTime", "DeviceTimeModel"]
