"""Thread-block execution context.

A simulated kernel is a Python callable ``kernel(ctx, *args)`` invoked once per
thread block. Inside the callable, per-thread work is expressed with vectorised
NumPy operations over "one entry per thread" (or per logical work item laid out
in thread order), which mirrors how a warp executes one SIMT instruction across
its lanes.

The :class:`BlockContext` exposes everything a CUDA block would have access to:

* its block id and geometry (``block_id``, ``num_threads``, ``thread_ids``),
* the tile of the input it owns (``tile_bounds``),
* global memory access with coalescing accounting (``load``, ``store``,
  ``load_tile``, ``store_tile``),
* shared memory (``shared``) and shared/global atomics (``atomics``),
* warp-level divergence accounting (``warps``),
* barriers (``syncthreads``) and explicit instruction accounting
  (``charge_instructions``).

All counting flows into one :class:`~repro.gpu.counters.KernelCounters` owned by
the launch, which the timing model later converts to device time.

:class:`~repro.gpu.vector.VectorContext` is this class's block-vectorised twin:
it covers *all* blocks of a fused launch at once and must charge the same
counters the per-block loop would. A kernel with both a scalar and a vectorised
body (selected by ``SampleSortConfig.kernel_mode``) uses this context as the
executable specification the vectorised body is tested against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .atomics import AtomicUnit
from .counters import KernelCounters
from .device import DeviceSpec
from .grid import LaunchConfig
from .memory import DeviceArray, GlobalMemory
from .shared import SharedMemory
from .warp import WarpExecutor


class BlockContext:
    """Execution context handed to a kernel body for one thread block."""

    def __init__(
        self,
        device: DeviceSpec,
        gmem: GlobalMemory,
        launch: LaunchConfig,
        block_id: int,
        counters: KernelCounters,
        problem_size: Optional[int] = None,
    ):
        self.device = device
        self.gmem = gmem
        self.launch = launch
        self.block_id = int(block_id)
        self.counters = counters
        self.problem_size = problem_size
        self.shared = SharedMemory(device, counters,
                                   capacity_bytes=device.shared_mem_per_sm)
        self.atomics = AtomicUnit(device, counters)
        self.warps = WarpExecutor(device, launch.block_dim, counters)

    # ---------------------------------------------------------------- geometry
    @property
    def num_threads(self) -> int:
        return self.launch.block_dim

    @property
    def num_blocks(self) -> int:
        return self.launch.grid_dim

    @property
    def elements_per_thread(self) -> int:
        return self.launch.elements_per_thread

    @property
    def tile_size(self) -> int:
        return self.launch.tile_size

    def thread_ids(self) -> np.ndarray:
        """Thread indices 0..block_dim-1 within this block."""
        return np.arange(self.num_threads)

    def global_thread_ids(self) -> np.ndarray:
        """Grid-wide thread indices for this block."""
        return self.block_id * self.num_threads + np.arange(self.num_threads)

    def tile_bounds(self, n: Optional[int] = None) -> tuple[int, int]:
        """The [start, end) slice of an n-element input owned by this block."""
        if n is None:
            n = self.problem_size
        if n is None:
            raise ValueError("tile_bounds requires the problem size")
        return self.launch.tile_bounds(self.block_id, n)

    # ------------------------------------------------------------ global memory
    def load(self, handle: DeviceArray, indices: np.ndarray) -> np.ndarray:
        """Gather ``handle[indices]`` (one index per thread/work item)."""
        return self.gmem.gather(handle, indices, self.counters,
                                warp_size=self.device.warp_size)

    def store(self, handle: DeviceArray, indices: np.ndarray, values) -> None:
        """Scatter ``values`` to ``handle[indices]``."""
        self.gmem.scatter(handle, indices, values, self.counters,
                          warp_size=self.device.warp_size)

    def load_tile(self, handle: DeviceArray, n: Optional[int] = None) -> np.ndarray:
        """Coalesced load of this block's whole tile of ``handle``.

        This is the canonical access pattern of Phases 2 and 4: each thread of
        the block reads ``ell`` consecutive chunks with a block-strided layout,
        which coalesces perfectly; the simulator charges the ideal transaction
        count through the contiguous fast path.
        """
        start, end = self.tile_bounds(n if n is not None else handle.size)
        return self.gmem.read_block(handle, start, end - start, self.counters)

    def store_tile(self, handle: DeviceArray, values: np.ndarray,
                   n: Optional[int] = None) -> None:
        """Coalesced store of this block's whole tile of ``handle``."""
        start, end = self.tile_bounds(n if n is not None else handle.size)
        values = np.asarray(values)
        if values.size != end - start:
            raise ValueError(
                f"store_tile size mismatch: tile has {end - start} elements, "
                f"got {values.size}"
            )
        self.gmem.write_block(handle, start, values, self.counters)

    def read_range(self, handle: DeviceArray, start: int, count: int) -> np.ndarray:
        """Coalesced read of an arbitrary contiguous range."""
        return self.gmem.read_block(handle, start, count, self.counters)

    def write_range(self, handle: DeviceArray, start: int, values: np.ndarray) -> None:
        """Coalesced write of an arbitrary contiguous range."""
        self.gmem.write_block(handle, start, values, self.counters)

    # ------------------------------------------------------------ miscellaneous
    def syncthreads(self) -> None:
        """Record a block-wide barrier."""
        self.counters.barriers += 1

    def charge_instructions(self, count: float) -> None:
        """Charge ``count`` dynamic scalar instructions to this block.

        Kernels call this for arithmetic that the vectorised NumPy expression
        performs "for free" from the simulator's point of view, e.g. one unit
        per element per comparison level of the search-tree traversal.
        """
        self.counters.instructions += int(count)

    def charge_per_element(self, num_elements: int, instructions_per_element: float) -> None:
        """Charge ``num_elements * instructions_per_element`` instructions."""
        self.counters.instructions += int(round(num_elements * instructions_per_element))

    def charge_streaming_traffic(self, bytes_read: int, bytes_written: int) -> None:
        """Charge perfectly coalesced global traffic without moving data.

        Used by kernels that model a well-understood streaming access pattern
        (e.g. the repeated passes of a sorting network running out of global
        memory) where materialising every intermediate pass through the memory
        system would only repeat the same ideal transaction count.
        """
        seg = self.device.mem_transaction_bytes
        if bytes_read > 0:
            tx = -(-int(bytes_read) // seg)
            self.counters.global_bytes_read += int(bytes_read)
            self.counters.global_read_transactions += tx
            self.counters.ideal_read_transactions += tx
        if bytes_written > 0:
            tx = -(-int(bytes_written) // seg)
            self.counters.global_bytes_written += int(bytes_written)
            self.counters.global_write_transactions += tx
            self.counters.ideal_write_transactions += tx


__all__ = ["BlockContext"]
