"""Kernel trace: the ordered record of launches that make up one sort.

A CUDA application is "a sequential CPU program that launches kernels on a GPU"
(Section 2). For the reproduction, the equivalent of a CUDA stream timeline is
the :class:`KernelTrace`: every kernel launch appends a :class:`KernelRecord`
with its counters, its launch geometry and its predicted time, tagged with a
phase label (``"phase1_splitters"``, ``"phase2_histogram"``, ... ) so per-phase
breakdowns — the basis of the Section 5 design discussion and of the ablation
benchmarks — fall out for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .counters import KernelCounters
from .grid import LaunchConfig
from .timing import KernelTime


@dataclass
class KernelRecord:
    """One kernel launch in a trace."""

    name: str
    phase: str
    launch: LaunchConfig
    counters: KernelCounters
    time: KernelTime

    @property
    def time_us(self) -> float:
        return self.time.total_us


@dataclass
class KernelTrace:
    """Ordered sequence of kernel launches for a complete operation."""

    records: list[KernelRecord] = field(default_factory=list)

    def append(self, record: KernelRecord) -> None:
        self.records.append(record)

    def extend(self, other: "KernelTrace") -> None:
        self.records.extend(other.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # -------------------------------------------------------------- aggregates
    @property
    def total_time_us(self) -> float:
        return sum(r.time_us for r in self.records)

    @property
    def kernel_count(self) -> int:
        return len(self.records)

    def total_counters(self) -> KernelCounters:
        total = KernelCounters()
        for record in self.records:
            total += record.counters
        return total

    def phases(self) -> list[str]:
        """Distinct phase labels in first-appearance order."""
        seen: list[str] = []
        for record in self.records:
            if record.phase not in seen:
                seen.append(record.phase)
        return seen

    def phase_time_us(self, phase: str) -> float:
        return sum(r.time_us for r in self.records if r.phase == phase)

    def phase_counters(self, phase: str) -> KernelCounters:
        total = KernelCounters()
        for record in self.records:
            if record.phase == phase:
                total += record.counters
        return total

    def phase_breakdown(self) -> dict[str, float]:
        """Mapping phase label -> total predicted microseconds."""
        return {phase: self.phase_time_us(phase) for phase in self.phases()}

    def launches_by_phase(self) -> dict[str, int]:
        """Mapping phase label -> number of kernel launches.

        For the level-batched engine this is the quantity that must scale with
        O(levels), not O(segments) — the tests assert exactly that.
        """
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.phase] = counts.get(record.phase, 0) + 1
        return counts

    def filter(self, phases: Iterable[str]) -> "KernelTrace":
        """A sub-trace containing only the given phases."""
        wanted = set(phases)
        return KernelTrace([r for r in self.records if r.phase in wanted])

    def format_breakdown(self, title: Optional[str] = None) -> str:
        """Human-readable per-phase table (used by examples and reports)."""
        lines = []
        if title:
            lines.append(title)
        total = self.total_time_us
        lines.append(f"{'phase':<28}{'kernels':>8}{'time [us]':>14}{'share':>9}")
        for phase in self.phases():
            t = self.phase_time_us(phase)
            k = sum(1 for r in self.records if r.phase == phase)
            share = (t / total * 100.0) if total > 0 else 0.0
            lines.append(f"{phase:<28}{k:>8}{t:>14.1f}{share:>8.1f}%")
        lines.append(f"{'total':<28}{len(self.records):>8}{total:>14.1f}{100.0:>8.1f}%")
        return "\n".join(lines)


__all__ = ["KernelRecord", "KernelTrace"]
