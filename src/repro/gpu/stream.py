"""Kernel trace: the ordered record of launches that make up one sort.

A CUDA application is "a sequential CPU program that launches kernels on a GPU"
(Section 2). For the reproduction, the equivalent of a CUDA stream timeline is
the :class:`KernelTrace`: every kernel launch appends a :class:`KernelRecord`
with its counters, its launch geometry and its predicted time, tagged with a
phase label (``"phase1_splitters"``, ``"phase2_histogram"``, ... ) so per-phase
breakdowns — the basis of the Section 5 design discussion and of the ablation
benchmarks — fall out for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .counters import KernelCounters
from .grid import LaunchConfig
from .timing import KernelTime


@dataclass
class KernelRecord:
    """One kernel launch in a trace.

    A *fused* record (produced by ``KernelLauncher.launch_persistent``) folds
    several phase bodies into one resident launch: ``constituents`` keeps the
    per-phase records it absorbed and ``fused_phases`` is a
    ``((phase, busy_us), ...)`` breakdown whose parts sum exactly to
    :attr:`time_us`, so per-phase accounting (utilisation tables, span
    reconciliation) can attribute the fused launch's slot occupancy back to
    the phases it covers. Both stay empty for ordinary launches.
    """

    name: str
    phase: str
    launch: LaunchConfig
    counters: KernelCounters
    time: KernelTime
    fused_phases: tuple = ()
    constituents: tuple = ()

    @property
    def time_us(self) -> float:
        return self.time.total_us


@dataclass
class KernelTrace:
    """Ordered sequence of kernel launches for a complete operation."""

    records: list[KernelRecord] = field(default_factory=list)
    #: Slot-occupancy records produced by the launch scheduler (one
    #: ``repro.core.launch_plan.SlotRecord`` per scheduled launch: which
    #: stream slot ran it and when). Purely an accounting annex — no kernel
    #: semantics depend on it.
    slot_records: list = field(default_factory=list)

    def append(self, record: KernelRecord) -> None:
        self.records.append(record)

    def extend(self, other: "KernelTrace") -> None:
        self.records.extend(other.records)
        self.slot_records.extend(other.slot_records)

    def add_slot_records(self, records) -> None:
        """Attach the scheduler's slot-occupancy records for a finished run."""
        self.slot_records.extend(records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # -------------------------------------------------------------- aggregates
    @property
    def total_time_us(self) -> float:
        return sum(r.time_us for r in self.records)

    @property
    def kernel_count(self) -> int:
        return len(self.records)

    def total_counters(self) -> KernelCounters:
        total = KernelCounters()
        for record in self.records:
            total += record.counters
        return total

    def phases(self) -> list[str]:
        """Distinct phase labels in first-appearance order."""
        seen: list[str] = []
        for record in self.records:
            if record.phase not in seen:
                seen.append(record.phase)
        return seen

    def phase_time_us(self, phase: str) -> float:
        return sum(r.time_us for r in self.records if r.phase == phase)

    def phase_counters(self, phase: str) -> KernelCounters:
        total = KernelCounters()
        for record in self.records:
            if record.phase == phase:
                total += record.counters
        return total

    def phase_breakdown(self) -> dict[str, float]:
        """Mapping phase label -> total predicted microseconds."""
        return {phase: self.phase_time_us(phase) for phase in self.phases()}

    def launches_by_phase(self) -> dict[str, int]:
        """Mapping phase label -> number of kernel launches.

        For the level-batched engine this is the quantity that must scale with
        O(levels), not O(segments) — the tests assert exactly that.
        """
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.phase] = counts.get(record.phase, 0) + 1
        return counts

    def filter(self, phases: Iterable[str]) -> "KernelTrace":
        """A sub-trace containing only the given phases."""
        wanted = set(phases)
        return KernelTrace([r for r in self.records if r.phase in wanted])

    def slice_from(self, start: int,
                   slot_start: Optional[int] = None) -> "KernelTrace":
        """Sub-trace of the records appended at index ``start`` and later.

        A persistent stream accumulates launches across many operations; a
        caller that wants the accounting of just its own operation snapshots
        ``len(trace)`` before dispatching and slices afterwards. The slot
        annex is sliced from ``slot_start`` when given (snapshot
        ``len(trace.slot_records)`` the same way), otherwise left empty.
        """
        slots = [] if slot_start is None else self.slot_records[slot_start:]
        return KernelTrace(records=self.records[start:], slot_records=slots)

    def format_breakdown(self, title: Optional[str] = None) -> str:
        """Human-readable per-phase table (used by examples and reports)."""
        lines = []
        if title:
            lines.append(title)
        total = self.total_time_us
        lines.append(f"{'phase':<28}{'kernels':>8}{'time [us]':>14}{'share':>9}")
        for phase in self.phases():
            t = self.phase_time_us(phase)
            k = sum(1 for r in self.records if r.phase == phase)
            share = (t / total * 100.0) if total > 0 else 0.0
            lines.append(f"{phase:<28}{k:>8}{t:>14.1f}{share:>8.1f}%")
        lines.append(f"{'total':<28}{len(self.records):>8}{total:>14.1f}{100.0:>8.1f}%")
        return "\n".join(lines)


@dataclass
class DeviceStream:
    """An in-order work queue on one simulated device.

    A CUDA stream executes the operations enqueued on it in order, each
    starting no earlier than both its enqueue time and the completion of its
    predecessor. The serving layer gives every device shard one persistent
    stream: the shard's batches append their launches to the stream's single
    accumulated :class:`KernelTrace` (stream *reuse* — no per-batch stream
    setup), and :meth:`enqueue` advances the stream's busy horizon, which is
    what multi-shard scheduling and per-request completion times are computed
    from.
    """

    name: str = "stream0"
    trace: KernelTrace = field(default_factory=KernelTrace)
    #: Simulated time at which the last enqueued operation completes.
    busy_until_us: float = 0.0
    #: Number of operations enqueued so far.
    operations: int = 0

    def available_at(self, now_us: float) -> float:
        """Earliest time an operation enqueued at ``now_us`` could start."""
        return max(now_us, self.busy_until_us)

    def enqueue(self, duration_us: float, now_us: float) -> tuple[float, float]:
        """Enqueue an operation of ``duration_us``; returns ``(start, end)``."""
        if duration_us < 0:
            raise ValueError(f"operation duration must be >= 0, got {duration_us}")
        start = self.available_at(now_us)
        end = start + duration_us
        self.busy_until_us = end
        self.operations += 1
        return start, end

    @property
    def busy_us(self) -> float:
        """Total predicted device time of every launch on this stream."""
        return self.trace.total_time_us


__all__ = ["KernelRecord", "KernelTrace", "DeviceStream"]
