"""Global device memory for the SIMT simulator.

Global memory is where the sorting input, output, histograms and bucket offsets
live. Two properties of GT200 global memory matter for the paper's analysis and
are modelled here:

* **Traffic volume.** Every k-way distribution pass touches the whole input a
  constant number of times; two-way algorithms touch it ``log2`` times. The
  simulator counts requested bytes exactly.
* **Coalescing.** Loads/stores of the 32 threads of a warp that fall into the
  same 128-byte segment are serviced by one transaction; scattered accesses
  require one transaction per segment touched. Phase 4's scatter is the main
  source of uncoalesced traffic in sample sort; the merge and radix baselines
  have more regular write patterns. The simulator analyses the actual index
  vectors of every access and counts issued vs. ideal transactions.

Arrays are wrapped in :class:`DeviceArray` handles; raw element data is stored
in NumPy arrays so kernels can operate on whole tiles with vectorised
operations (one Python-level "instruction" per warp-instruction batch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .counters import KernelCounters
from .device import DeviceSpec
from .errors import GlobalMemoryError


@dataclass
class DeviceArray:
    """A handle to an allocation in simulated global memory."""

    name: str
    data: np.ndarray

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def itemsize(self) -> int:
        return int(self.data.dtype.itemsize)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def __len__(self) -> int:  # pragma: no cover - trivial
        return self.size

    def to_host(self) -> np.ndarray:
        """Copy the contents back to the host (returns an independent array)."""
        return self.data.copy()


def _count_warp_segments(
    byte_addresses: np.ndarray, warp_size: int, segment_bytes: int
) -> int:
    """Count memory transactions for a vector of per-thread byte addresses.

    Threads are grouped into warps of ``warp_size`` consecutive lanes; each warp
    issues one transaction per distinct ``segment_bytes``-sized segment touched.
    """
    n = byte_addresses.size
    if n == 0:
        return 0
    segments = byte_addresses // segment_bytes
    # Pad to a whole number of warps with a sentinel that never collides with a
    # real segment (real segments are non-negative).
    pad = (-n) % warp_size
    if pad:
        segments = np.concatenate([segments, np.full(pad, -1, dtype=np.int64)])
    per_warp = segments.reshape(-1, warp_size)
    per_warp = np.sort(per_warp, axis=1)
    distinct = np.ones(per_warp.shape[0], dtype=np.int64)
    distinct += (np.diff(per_warp, axis=1) != 0).sum(axis=1)
    if pad:
        # The sentinel introduced exactly one extra distinct value in the last
        # warp unless the last warp is empty of real lanes (cannot happen since
        # pad < warp_size).
        distinct[-1] -= 1
    return int(distinct.sum())


def _ideal_segments(count: int, itemsize: int, warp_size: int, segment_bytes: int) -> int:
    """Minimum transactions needed for ``count`` contiguous accesses of a warp."""
    if count == 0:
        return 0
    per_warp_bytes = warp_size * itemsize
    ideal_per_full_warp = max(1, -(-per_warp_bytes // segment_bytes))
    full_warps, rem = divmod(count, warp_size)
    total = full_warps * ideal_per_full_warp
    if rem:
        total += max(1, -(-(rem * itemsize) // segment_bytes))
    return int(total)


class GlobalMemory:
    """Simulated global (device) memory with transaction accounting.

    One instance is shared by all kernels of a sort so that total footprint can
    be checked against the device capacity, mimicking the 4 GB limit that lets
    the paper scale to n = 2^27 key-value pairs on the Tesla C1060.
    """

    def __init__(self, device: DeviceSpec):
        self.device = device
        self._allocations: dict[str, DeviceArray] = {}
        self._bytes_allocated = 0
        self._alloc_counter = 0

    # ------------------------------------------------------------- allocation
    @property
    def bytes_allocated(self) -> int:
        return self._bytes_allocated

    def alloc(self, shape, dtype, name: Optional[str] = None) -> DeviceArray:
        """Allocate a zero-initialised device array."""
        arr = np.zeros(shape, dtype=dtype)
        return self._register(arr, name)

    def from_host(self, host_array: np.ndarray, name: Optional[str] = None) -> DeviceArray:
        """Copy a host array to the device (models cudaMemcpy H2D)."""
        arr = np.array(host_array, copy=True)
        return self._register(arr, name)

    def _register(self, arr: np.ndarray, name: Optional[str]) -> DeviceArray:
        if name is None:
            name = f"buf{self._alloc_counter}"
        self._alloc_counter += 1
        new_total = self._bytes_allocated + arr.nbytes
        if new_total > self.device.global_mem_bytes:
            raise GlobalMemoryError(
                f"device memory exhausted: requested {arr.nbytes} bytes for "
                f"{name!r}, {self._bytes_allocated} already allocated, capacity "
                f"{self.device.global_mem_bytes}"
            )
        handle = DeviceArray(name=name, data=arr)
        self._allocations[name] = handle
        self._bytes_allocated = new_total
        return handle

    def free(self, handle: DeviceArray) -> None:
        """Release an allocation (models cudaFree)."""
        if handle.name in self._allocations:
            del self._allocations[handle.name]
            self._bytes_allocated -= handle.nbytes

    # ------------------------------------------------------------ access paths
    def gather(
        self,
        handle: DeviceArray,
        indices: np.ndarray,
        counters: KernelCounters,
        warp_size: Optional[int] = None,
    ) -> np.ndarray:
        """Read ``handle[indices]``, counting read traffic and transactions.

        ``indices`` is interpreted as one index per active thread in launch
        order; consecutive groups of ``warp_size`` entries form a warp for the
        coalescing analysis.
        """
        idx = np.asarray(indices, dtype=np.int64)
        self._check_bounds(handle, idx)
        ws = warp_size or self.device.warp_size
        itemsize = handle.itemsize
        counters.global_bytes_read += int(idx.size) * itemsize
        counters.global_read_transactions += _count_warp_segments(
            idx * itemsize, ws, self.device.mem_transaction_bytes
        )
        counters.ideal_read_transactions += _ideal_segments(
            int(idx.size), itemsize, ws, self.device.mem_transaction_bytes
        )
        return handle.data[idx]

    def scatter(
        self,
        handle: DeviceArray,
        indices: np.ndarray,
        values: np.ndarray,
        counters: KernelCounters,
        warp_size: Optional[int] = None,
    ) -> None:
        """Write ``values`` to ``handle[indices]`` with write-traffic accounting."""
        idx = np.asarray(indices, dtype=np.int64)
        vals = np.asarray(values)
        if idx.shape != vals.shape:
            raise GlobalMemoryError(
                f"scatter shape mismatch: indices {idx.shape} vs values {vals.shape}"
            )
        self._check_bounds(handle, idx)
        ws = warp_size or self.device.warp_size
        itemsize = handle.itemsize
        counters.global_bytes_written += int(idx.size) * itemsize
        counters.global_write_transactions += _count_warp_segments(
            idx * itemsize, ws, self.device.mem_transaction_bytes
        )
        counters.ideal_write_transactions += _ideal_segments(
            int(idx.size), itemsize, ws, self.device.mem_transaction_bytes
        )
        handle.data[idx] = vals.astype(handle.dtype, copy=False)

    def read_block(
        self, handle: DeviceArray, start: int, count: int, counters: KernelCounters
    ) -> np.ndarray:
        """Read a contiguous slice — the fully coalesced fast path."""
        if count < 0 or start < 0 or start + count > handle.size:
            raise GlobalMemoryError(
                f"read_block out of bounds: [{start}, {start + count}) of {handle.size}"
            )
        itemsize = handle.itemsize
        counters.global_bytes_read += count * itemsize
        tx = _ideal_segments(
            count, itemsize, self.device.warp_size, self.device.mem_transaction_bytes
        )
        counters.global_read_transactions += tx
        counters.ideal_read_transactions += tx
        return handle.data[start : start + count]

    def write_block(
        self,
        handle: DeviceArray,
        start: int,
        values: np.ndarray,
        counters: KernelCounters,
    ) -> None:
        """Write a contiguous slice — the fully coalesced fast path."""
        values = np.asarray(values)
        count = int(values.size)
        if start < 0 or start + count > handle.size:
            raise GlobalMemoryError(
                f"write_block out of bounds: [{start}, {start + count}) of {handle.size}"
            )
        itemsize = handle.itemsize
        counters.global_bytes_written += count * itemsize
        tx = _ideal_segments(
            count, itemsize, self.device.warp_size, self.device.mem_transaction_bytes
        )
        counters.global_write_transactions += tx
        counters.ideal_write_transactions += tx
        handle.data[start : start + count] = values.astype(handle.dtype, copy=False)

    # ---------------------------------------------------------------- internal
    @staticmethod
    def _check_bounds(handle: DeviceArray, idx: np.ndarray) -> None:
        if idx.size == 0:
            return
        lo = int(idx.min())
        hi = int(idx.max())
        if lo < 0 or hi >= handle.size:
            raise GlobalMemoryError(
                f"index out of bounds for {handle.name!r}: range [{lo}, {hi}] "
                f"but size is {handle.size}"
            )


__all__ = ["DeviceArray", "GlobalMemory"]
