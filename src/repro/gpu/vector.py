"""Block-vectorised execution context for fused kernel launches.

:func:`repro.gpu.kernel.launch` runs a kernel body once per thread block in a
Python loop. That loop is pure simulator overhead: the blocks of one launch are
independent, so their work can be expressed as *stacked* NumPy operations over
all blocks at once — the same observation the paper makes about expressing a
distribution phase as one wide data-parallel pass. :class:`VectorContext` is
the batched counterpart of :class:`~repro.gpu.block.BlockContext`: a kernel
body written against it executes every block of the grid in one call.

The contract with the scalar path is strict: a vectorised kernel must produce
**byte-identical data** and **identical aggregated counters** to running the
scalar body once per block. All accounting therefore remains *per block*:

* contiguous tile loads/stores charge the per-block ideal transaction count of
  each tile, not one fused transfer (blocks never share warps);
* gathers/scatters replay the warp-coalescing analysis per block row
  (:func:`blocked_warp_segment_count` groups rows of equal length and analyses
  them as a stack, which is arithmetically identical to the per-block loop);
* atomic contention is replayed per block row (:func:`blocked_conflict_cost`);
* barriers and fixed per-block instruction charges are multiplied by the
  number of participating blocks.

Ragged final tiles are handled by grouping block rows by length — a fused
launch has very few distinct tile lengths (the full tile plus one partial tile
per segment), so the grouping stays cheap.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .counters import KernelCounters
from .device import DeviceSpec
from .errors import GlobalMemoryError, SharedMemoryError
from .grid import LaunchConfig
from .memory import DeviceArray, GlobalMemory, _ideal_segments


# --------------------------------------------------------------------- helpers
def concat_aranges(lengths: np.ndarray) -> np.ndarray:
    """``[0..l0), [0..l1), ...`` concatenated — element offsets within rows."""
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    row_ids = np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)
    row_starts = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=row_starts[1:])
    return np.arange(total, dtype=np.int64) - row_starts[row_ids]


def _rows_by_length(row_lengths: np.ndarray):
    """Yield ``(length, row_offsets)`` groups for a ragged row layout."""
    row_lengths = np.asarray(row_lengths, dtype=np.int64)
    offsets = np.zeros(row_lengths.size, dtype=np.int64)
    np.cumsum(row_lengths[:-1], out=offsets[1:])
    for length in np.unique(row_lengths):
        if length == 0:
            continue
        yield int(length), offsets[row_lengths == length]


def blocked_ideal_segments(row_lengths: np.ndarray, itemsize: int,
                           warp_size: int, segment_bytes: int) -> int:
    """Sum of per-row :func:`~repro.gpu.memory._ideal_segments` counts."""
    row_lengths = np.asarray(row_lengths, dtype=np.int64)
    lengths, counts = np.unique(row_lengths, return_counts=True)
    return int(sum(
        int(c) * _ideal_segments(int(n), itemsize, warp_size, segment_bytes)
        for n, c in zip(lengths, counts)
    ))


def _stack_ragged(values: np.ndarray, row_lengths: np.ndarray,
                  padded_cols: int, fill) -> np.ndarray:
    """Place concatenated ragged rows into a ``(rows, padded_cols)`` matrix.

    The fill can be a scalar or a per-column vector (broadcast down the rows);
    real entries overwrite it row-major, matching the concatenation order.
    """
    row_lengths = np.asarray(row_lengths, dtype=np.int64)
    mask = np.arange(padded_cols)[None, :] < row_lengths[:, None]
    matrix = np.broadcast_to(fill, (row_lengths.size, padded_cols)).astype(
        np.int64, copy=True
    )
    matrix[mask] = values
    return matrix


def blocked_warp_segment_count(byte_addresses: np.ndarray,
                               row_lengths: np.ndarray,
                               warp_size: int, segment_bytes: int) -> int:
    """Sum of per-row :func:`~repro.gpu.memory._count_warp_segments` counts.

    ``byte_addresses`` is the concatenation of every row's per-thread byte
    addresses; each row is one block's access and is analysed independently
    (blocks never share warps — warp boundaries restart at each row). All rows
    are stacked into one matrix padded with a shared ``-1`` sentinel and
    analysed with a single sort; the sentinel contributions (one extra
    distinct value in a row's partially-filled warp, one per fully-padded
    warp) are then subtracted per row, reproducing the scalar helper's
    per-call correction exactly.
    """
    addresses = np.asarray(byte_addresses, dtype=np.int64)
    row_lengths = np.asarray(row_lengths, dtype=np.int64)
    if addresses.size == 0:
        return 0
    max_len = int(row_lengths.max())
    padded = max_len + (-max_len) % warp_size
    segments = _stack_ragged(addresses // segment_bytes, row_lengths, padded, -1)
    per_warp = np.sort(segments.reshape(row_lengths.size, -1, warp_size), axis=2)
    distinct = 1 + (np.diff(per_warp, axis=2) != 0).sum(axis=2)
    real_warps = -(-row_lengths // warp_size)
    phantom_warps = padded // warp_size - real_warps
    boundary = (row_lengths % warp_size != 0).astype(np.int64)
    return int(distinct.sum() - (phantom_warps + boundary).sum())


def blocked_conflict_cost(indices: np.ndarray, row_lengths: np.ndarray,
                          warp_size: int) -> int:
    """Sum of per-row :func:`repro.gpu.atomics._conflict_cost` replays.

    Padding uses one distinct negative sentinel per column: a warp's replay
    cost ``accesses - distinct`` is unaffected by such padding (every sentinel
    is its own never-colliding address), so fully-padded warps contribute zero
    and partially-padded warps count only their real lanes — identical to the
    scalar helper's unique-sentinel correction.
    """
    all_indices = np.asarray(indices, dtype=np.int64)
    row_lengths = np.asarray(row_lengths, dtype=np.int64)
    if all_indices.size == 0:
        return 0
    max_len = int(row_lengths.max())
    padded = max_len + (-max_len) % warp_size
    sentinels = -np.arange(1, padded + 1, dtype=np.int64)
    matrix = _stack_ragged(all_indices, row_lengths, padded, sentinels)
    per_warp = np.sort(matrix.reshape(row_lengths.size, -1, warp_size), axis=2)
    distinct = 1 + (np.diff(per_warp, axis=2) != 0).sum(axis=2)
    return int((warp_size - distinct).sum())


# --------------------------------------------------------------------- context
class VectorContext:
    """Execution context covering *all* blocks of one fused launch.

    The vectorised twin of :class:`~repro.gpu.block.BlockContext`. Data access
    helpers take per-row (= per-block) index/length vectors and perform the
    whole grid's traffic in one NumPy operation while charging the counters
    exactly as the scalar per-block loop would.
    """

    def __init__(
        self,
        device: DeviceSpec,
        gmem: GlobalMemory,
        launch: LaunchConfig,
        counters: KernelCounters,
        problem_size: Optional[int] = None,
    ):
        self.device = device
        self.gmem = gmem
        self.launch = launch
        self.counters = counters
        self.problem_size = problem_size

    # ---------------------------------------------------------------- geometry
    @property
    def num_blocks(self) -> int:
        return self.launch.grid_dim

    @property
    def num_threads(self) -> int:
        return self.launch.block_dim

    @property
    def tile_size(self) -> int:
        return self.launch.tile_size

    def block_ids(self) -> np.ndarray:
        return np.arange(self.num_blocks, dtype=np.int64)

    def tile_geometry(self, n: Optional[int] = None) -> tuple[np.ndarray, np.ndarray]:
        """Per-block ``(starts, lengths)`` of a contiguous n-element tiling."""
        if n is None:
            n = self.problem_size
        if n is None:
            raise ValueError("tile_geometry requires the problem size")
        starts = self.block_ids() * self.tile_size
        lengths = np.clip(int(n) - starts, 0, self.tile_size)
        return starts, lengths

    # -------------------------------------------------------------- accounting
    def charge_instructions(self, count: float) -> None:
        self.counters.instructions += int(count)

    def charge_per_element_rows(self, row_lengths: np.ndarray,
                                instructions_per_element: float) -> None:
        """Per-row ``charge_per_element`` (the rounding happens per block)."""
        for length, offsets in _rows_by_length(row_lengths):
            self.counters.instructions += offsets.size * int(
                round(length * instructions_per_element)
            )

    def charge_predicated_rows(self, total_items: int,
                               instructions_per_item: float) -> None:
        """Vector twin of ``WarpExecutor.predicated`` summed over blocks."""
        self.counters.instructions += int(total_items) * int(instructions_per_item)

    def syncthreads(self, blocks: Optional[int] = None) -> None:
        """One barrier per participating block."""
        self.counters.barriers += int(self.num_blocks if blocks is None else blocks)

    def check_shared_fit(self, bytes_per_block: int) -> None:
        """Per-block shared-memory capacity check (all blocks allocate alike)."""
        if bytes_per_block > self.device.shared_mem_per_sm:
            raise SharedMemoryError(
                f"shared memory exhausted: requested {bytes_per_block} bytes "
                f"per block of {self.device.shared_mem_per_sm}"
            )

    def charge_contiguous_reads(self, handle: DeviceArray, count: int,
                                blocks: Optional[int] = None) -> None:
        """Charge ``blocks`` identical per-block coalesced reads of ``count``
        elements without moving data (used when every block stages the same
        slab stripe length, e.g. the splitter search tree)."""
        b = int(self.num_blocks if blocks is None else blocks)
        if count <= 0 or b <= 0:
            return
        itemsize = handle.itemsize
        tx = b * _ideal_segments(count, itemsize, self.device.warp_size,
                                 self.device.mem_transaction_bytes)
        self.counters.global_bytes_read += b * count * itemsize
        self.counters.global_read_transactions += tx
        self.counters.ideal_read_transactions += tx

    # ------------------------------------------------------------- data access
    def _check_bounds(self, handle: DeviceArray, idx: np.ndarray) -> None:
        if idx.size == 0:
            return
        lo = int(idx.min())
        hi = int(idx.max())
        if lo < 0 or hi >= handle.size:
            raise GlobalMemoryError(
                f"index out of bounds for {handle.name!r}: range [{lo}, {hi}] "
                f"but size is {handle.size}"
            )

    def read_ranges(self, handle: DeviceArray, starts: np.ndarray,
                    lengths: np.ndarray) -> np.ndarray:
        """Per-block contiguous reads, concatenated (the coalesced fast path)."""
        starts = np.asarray(starts, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        flat = np.repeat(starts, lengths) + concat_aranges(lengths)
        self._check_bounds(handle, flat)
        itemsize = handle.itemsize
        tx = blocked_ideal_segments(lengths, itemsize, self.device.warp_size,
                                    self.device.mem_transaction_bytes)
        self.counters.global_bytes_read += int(lengths.sum()) * itemsize
        self.counters.global_read_transactions += tx
        self.counters.ideal_read_transactions += tx
        return handle.data[flat]

    def write_ranges(self, handle: DeviceArray, starts: np.ndarray,
                     values: np.ndarray, lengths: np.ndarray) -> None:
        """Per-block contiguous writes of concatenated ``values``."""
        starts = np.asarray(starts, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        values = np.asarray(values)
        if values.size != int(lengths.sum()):
            raise GlobalMemoryError(
                f"write_ranges size mismatch: rows hold {int(lengths.sum())} "
                f"elements, got {values.size}"
            )
        flat = np.repeat(starts, lengths) + concat_aranges(lengths)
        self._check_bounds(handle, flat)
        itemsize = handle.itemsize
        tx = blocked_ideal_segments(lengths, itemsize, self.device.warp_size,
                                    self.device.mem_transaction_bytes)
        self.counters.global_bytes_written += int(lengths.sum()) * itemsize
        self.counters.global_write_transactions += tx
        self.counters.ideal_write_transactions += tx
        handle.data[flat] = values.astype(handle.dtype, copy=False)

    def gather_rows(self, handle: DeviceArray, indices: np.ndarray,
                    row_lengths: np.ndarray) -> np.ndarray:
        """Per-block gathers with the per-block coalescing analysis."""
        idx = np.asarray(indices, dtype=np.int64)
        self._check_bounds(handle, idx)
        itemsize = handle.itemsize
        self.counters.global_bytes_read += int(idx.size) * itemsize
        self.counters.global_read_transactions += blocked_warp_segment_count(
            idx * itemsize, row_lengths, self.device.warp_size,
            self.device.mem_transaction_bytes,
        )
        self.counters.ideal_read_transactions += blocked_ideal_segments(
            row_lengths, itemsize, self.device.warp_size,
            self.device.mem_transaction_bytes,
        )
        return handle.data[idx]

    def scatter_rows(self, handle: DeviceArray, indices: np.ndarray,
                     values: np.ndarray, row_lengths: np.ndarray) -> None:
        """Per-block scatters (indices must be disjoint across the grid, which
        holds for every distribution kernel: each element owns one output slot)."""
        idx = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values)
        if idx.shape != values.shape:
            raise GlobalMemoryError(
                f"scatter shape mismatch: indices {idx.shape} vs values "
                f"{values.shape}"
            )
        self._check_bounds(handle, idx)
        itemsize = handle.itemsize
        self.counters.global_bytes_written += int(idx.size) * itemsize
        self.counters.global_write_transactions += blocked_warp_segment_count(
            idx * itemsize, row_lengths, self.device.warp_size,
            self.device.mem_transaction_bytes,
        )
        self.counters.ideal_write_transactions += blocked_ideal_segments(
            row_lengths, itemsize, self.device.warp_size,
            self.device.mem_transaction_bytes,
        )
        handle.data[idx] = values.astype(handle.dtype, copy=False)

    def atomic_add_rows(self, indices: np.ndarray, row_lengths: np.ndarray) -> None:
        """Charge per-block shared-memory atomic increments (no data movement —
        the vectorised histogram computes the counts with ``bincount``)."""
        idx = np.asarray(indices, dtype=np.int64)
        self.counters.atomic_operations += int(idx.size)
        self.counters.atomic_conflicts += blocked_conflict_cost(
            idx, row_lengths, self.device.warp_size
        )


__all__ = [
    "VectorContext",
    "concat_aranges",
    "blocked_ideal_segments",
    "blocked_warp_segment_count",
    "blocked_conflict_cost",
]
