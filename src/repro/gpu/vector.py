"""Block-vectorised execution context for fused kernel launches.

:func:`repro.gpu.kernel.launch` runs a kernel body once per thread block in a
Python loop. That loop is pure simulator overhead: the blocks of one launch are
independent, so their work can be expressed as *stacked* NumPy operations over
all blocks at once — the same observation the paper makes about expressing a
distribution phase as one wide data-parallel pass. :class:`VectorContext` is
the batched counterpart of :class:`~repro.gpu.block.BlockContext`: a kernel
body written against it executes every block of the grid in one call.

The contract with the scalar path is strict: a vectorised kernel must produce
**byte-identical data** and **identical aggregated counters** to running the
scalar body once per block. All accounting therefore remains *per block*:

* contiguous tile loads/stores charge the per-block ideal transaction count of
  each tile, not one fused transfer (blocks never share warps);
* gathers/scatters replay the warp-coalescing analysis per block row
  (:meth:`~repro.backend.simulated.SimulatedBackend.warp_segment_count_rows`
  groups rows of equal length and analyses them as a stack, which is
  arithmetically identical to the per-block loop);
* atomic contention is replayed per block row
  (:meth:`~repro.backend.simulated.SimulatedBackend.conflict_cost_rows`);
* barriers and fixed per-block instruction charges are multiplied by the
  number of participating blocks.

Both halves of that contract route through :mod:`repro.backend`: the *math*
(gathers, scatters, ragged layout) goes to the configured
:class:`~repro.backend.protocol.ArrayBackend`, and the *accounting* lives in
the :class:`~repro.backend.simulated.SimulatedBackend` decorator the context
always wraps its math backend in — so the counters are identical whichever
backend runs the math. The module-level ``blocked_*`` helpers remain as thin
aliases over the default simulated backend for existing callers.

Ragged final tiles are handled by grouping block rows by length — a fused
launch has very few distinct tile lengths (the full tile plus one partial tile
per segment), so the grouping stays cheap.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backend.protocol import ArrayBackend
from ..backend.simulated import SimulatedBackend, ensure_simulated
from .counters import KernelCounters
from .device import DeviceSpec
from .errors import GlobalMemoryError, SharedMemoryError
from .grid import LaunchConfig
from .memory import DeviceArray, GlobalMemory, _ideal_segments


# --------------------------------------------------------------------- helpers
#: Default math+accounting stack, shared by the module-level helper aliases
#: and by contexts constructed without an explicit backend.
_DEFAULT_BACKEND = SimulatedBackend()


def concat_aranges(lengths: np.ndarray) -> np.ndarray:
    """``[0..l0), [0..l1), ...`` concatenated — element offsets within rows."""
    return _DEFAULT_BACKEND.concat_aranges(lengths)


def blocked_ideal_segments(row_lengths: np.ndarray, itemsize: int,
                           warp_size: int, segment_bytes: int) -> int:
    """Sum of per-row :func:`~repro.gpu.memory._ideal_segments` counts."""
    return _DEFAULT_BACKEND.ideal_segments_rows(row_lengths, itemsize,
                                                warp_size, segment_bytes)


def blocked_warp_segment_count(byte_addresses: np.ndarray,
                               row_lengths: np.ndarray,
                               warp_size: int, segment_bytes: int) -> int:
    """Sum of per-row :func:`~repro.gpu.memory._count_warp_segments` counts."""
    return _DEFAULT_BACKEND.warp_segment_count_rows(
        byte_addresses, row_lengths, warp_size, segment_bytes
    )


def blocked_conflict_cost(indices: np.ndarray, row_lengths: np.ndarray,
                          warp_size: int) -> int:
    """Sum of per-row :func:`repro.gpu.atomics._conflict_cost` replays."""
    return _DEFAULT_BACKEND.conflict_cost_rows(indices, row_lengths, warp_size)


def _rows_by_length(row_lengths: np.ndarray):
    """Yield ``(length, row_offsets)`` groups for a ragged row layout."""
    row_lengths = np.asarray(row_lengths, dtype=np.int64)
    offsets = np.zeros(row_lengths.size, dtype=np.int64)
    np.cumsum(row_lengths[:-1], out=offsets[1:])
    for length in np.unique(row_lengths):
        if length == 0:
            continue
        yield int(length), offsets[row_lengths == length]


# --------------------------------------------------------------------- context
class VectorContext:
    """Execution context covering *all* blocks of one fused launch.

    The vectorised twin of :class:`~repro.gpu.block.BlockContext`. Data access
    helpers take per-row (= per-block) index/length vectors and perform the
    whole grid's traffic in one backend operation while charging the counters
    exactly as the scalar per-block loop would. The ``backend`` argument picks
    the math implementation; it is always wrapped in the accounting decorator
    (:func:`~repro.backend.simulated.ensure_simulated`), so counters never
    depend on the backend choice.
    """

    def __init__(
        self,
        device: DeviceSpec,
        gmem: GlobalMemory,
        launch: LaunchConfig,
        counters: KernelCounters,
        problem_size: Optional[int] = None,
        backend: Optional[ArrayBackend] = None,
    ):
        self.device = device
        self.gmem = gmem
        self.launch = launch
        self.counters = counters
        self.problem_size = problem_size
        self.backend: SimulatedBackend = (
            _DEFAULT_BACKEND if backend is None else ensure_simulated(backend)
        )

    # ---------------------------------------------------------------- geometry
    @property
    def num_blocks(self) -> int:
        return self.launch.grid_dim

    @property
    def num_threads(self) -> int:
        return self.launch.block_dim

    @property
    def tile_size(self) -> int:
        return self.launch.tile_size

    def block_ids(self) -> np.ndarray:
        return np.arange(self.num_blocks, dtype=np.int64)

    def tile_geometry(self, n: Optional[int] = None) -> tuple[np.ndarray, np.ndarray]:
        """Per-block ``(starts, lengths)`` of a contiguous n-element tiling."""
        if n is None:
            n = self.problem_size
        if n is None:
            raise ValueError("tile_geometry requires the problem size")
        starts = self.block_ids() * self.tile_size
        lengths = np.clip(int(n) - starts, 0, self.tile_size)
        return starts, lengths

    # -------------------------------------------------------------- accounting
    def charge_instructions(self, count: float) -> None:
        self.counters.instructions += int(count)

    def charge_per_element_rows(self, row_lengths: np.ndarray,
                                instructions_per_element: float) -> None:
        """Per-row ``charge_per_element`` (the rounding happens per block)."""
        for length, offsets in _rows_by_length(row_lengths):
            self.counters.instructions += offsets.size * int(
                round(length * instructions_per_element)
            )

    def charge_predicated_rows(self, total_items: int,
                               instructions_per_item: float) -> None:
        """Vector twin of ``WarpExecutor.predicated`` summed over blocks."""
        self.counters.instructions += int(total_items) * int(instructions_per_item)

    def syncthreads(self, blocks: Optional[int] = None) -> None:
        """One barrier per participating block."""
        self.counters.barriers += int(self.num_blocks if blocks is None else blocks)

    def check_shared_fit(self, bytes_per_block: int) -> None:
        """Per-block shared-memory capacity check (all blocks allocate alike)."""
        if bytes_per_block > self.device.shared_mem_per_sm:
            raise SharedMemoryError(
                f"shared memory exhausted: requested {bytes_per_block} bytes "
                f"per block of {self.device.shared_mem_per_sm}"
            )

    def charge_contiguous_reads(self, handle: DeviceArray, count: int,
                                blocks: Optional[int] = None) -> None:
        """Charge ``blocks`` identical per-block coalesced reads of ``count``
        elements without moving data (used when every block stages the same
        slab stripe length, e.g. the splitter search tree)."""
        b = int(self.num_blocks if blocks is None else blocks)
        if count <= 0 or b <= 0:
            return
        itemsize = handle.itemsize
        tx = b * _ideal_segments(count, itemsize, self.device.warp_size,
                                 self.device.mem_transaction_bytes)
        self.counters.global_bytes_read += b * count * itemsize
        self.counters.global_read_transactions += tx
        self.counters.ideal_read_transactions += tx

    # ------------------------------------------------------------- data access
    def _check_bounds(self, handle: DeviceArray, idx: np.ndarray) -> None:
        if idx.size == 0:
            return
        lo = int(idx.min())
        hi = int(idx.max())
        if lo < 0 or hi >= handle.size:
            raise GlobalMemoryError(
                f"index out of bounds for {handle.name!r}: range [{lo}, {hi}] "
                f"but size is {handle.size}"
            )

    def _flat_range_indices(self, starts: np.ndarray,
                            lengths: np.ndarray) -> np.ndarray:
        return (self.backend.repeat(starts, lengths)
                + self.backend.concat_aranges(lengths))

    def read_ranges(self, handle: DeviceArray, starts: np.ndarray,
                    lengths: np.ndarray) -> np.ndarray:
        """Per-block contiguous reads, concatenated (the coalesced fast path)."""
        starts = np.asarray(starts, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        flat = self._flat_range_indices(starts, lengths)
        self._check_bounds(handle, flat)
        itemsize = handle.itemsize
        tx = self.backend.ideal_segments_rows(
            lengths, itemsize, self.device.warp_size,
            self.device.mem_transaction_bytes,
        )
        self.counters.global_bytes_read += int(lengths.sum()) * itemsize
        self.counters.global_read_transactions += tx
        self.counters.ideal_read_transactions += tx
        return self.backend.gather(handle.data, flat)

    def write_ranges(self, handle: DeviceArray, starts: np.ndarray,
                     values: np.ndarray, lengths: np.ndarray) -> None:
        """Per-block contiguous writes of concatenated ``values``."""
        starts = np.asarray(starts, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        values = np.asarray(values)
        if values.size != int(lengths.sum()):
            raise GlobalMemoryError(
                f"write_ranges size mismatch: rows hold {int(lengths.sum())} "
                f"elements, got {values.size}"
            )
        flat = self._flat_range_indices(starts, lengths)
        self._check_bounds(handle, flat)
        itemsize = handle.itemsize
        tx = self.backend.ideal_segments_rows(
            lengths, itemsize, self.device.warp_size,
            self.device.mem_transaction_bytes,
        )
        self.counters.global_bytes_written += int(lengths.sum()) * itemsize
        self.counters.global_write_transactions += tx
        self.counters.ideal_write_transactions += tx
        self.backend.scatter(handle.data, flat,
                             self.backend.cast(values, handle.dtype))

    def gather_rows(self, handle: DeviceArray, indices: np.ndarray,
                    row_lengths: np.ndarray) -> np.ndarray:
        """Per-block gathers with the per-block coalescing analysis."""
        idx = np.asarray(indices, dtype=np.int64)
        self._check_bounds(handle, idx)
        itemsize = handle.itemsize
        self.counters.global_bytes_read += int(idx.size) * itemsize
        self.counters.global_read_transactions += \
            self.backend.warp_segment_count_rows(
                idx * itemsize, row_lengths, self.device.warp_size,
                self.device.mem_transaction_bytes,
            )
        self.counters.ideal_read_transactions += \
            self.backend.ideal_segments_rows(
                row_lengths, itemsize, self.device.warp_size,
                self.device.mem_transaction_bytes,
            )
        return self.backend.gather(handle.data, idx)

    def scatter_rows(self, handle: DeviceArray, indices: np.ndarray,
                     values: np.ndarray, row_lengths: np.ndarray) -> None:
        """Per-block scatters (indices must be disjoint across the grid, which
        holds for every distribution kernel: each element owns one output slot)."""
        idx = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values)
        if idx.shape != values.shape:
            raise GlobalMemoryError(
                f"scatter shape mismatch: indices {idx.shape} vs values "
                f"{values.shape}"
            )
        self._check_bounds(handle, idx)
        itemsize = handle.itemsize
        self.counters.global_bytes_written += int(idx.size) * itemsize
        self.counters.global_write_transactions += \
            self.backend.warp_segment_count_rows(
                idx * itemsize, row_lengths, self.device.warp_size,
                self.device.mem_transaction_bytes,
            )
        self.counters.ideal_write_transactions += \
            self.backend.ideal_segments_rows(
                row_lengths, itemsize, self.device.warp_size,
                self.device.mem_transaction_bytes,
            )
        self.backend.scatter(handle.data, idx,
                             self.backend.cast(values, handle.dtype))

    def atomic_add_rows(self, indices: np.ndarray, row_lengths: np.ndarray) -> None:
        """Charge per-block shared-memory atomic increments (no data movement —
        the vectorised histogram computes the counts with ``bincount``)."""
        idx = np.asarray(indices, dtype=np.int64)
        self.counters.atomic_operations += int(idx.size)
        self.counters.atomic_conflicts += self.backend.conflict_cost_rows(
            idx, row_lengths, self.device.warp_size
        )


__all__ = [
    "VectorContext",
    "concat_aranges",
    "blocked_ideal_segments",
    "blocked_warp_segment_count",
    "blocked_conflict_cost",
]
