"""Atomic operations with contention accounting.

Phase 2 of the paper's sample sort counts bucket sizes by having every thread
atomically increment a shared-memory counter. Under SIMT execution, atomics to
the same address serialise: if all 32 lanes of a warp hit one counter the
hardware replays the operation 32 times. The paper reduces this cost by
splitting threads into groups with **8 separate counter arrays** and summing
them afterwards — "We found 8 arrays to be a good compromise between overhead
for handling several arrays and a lack of parallelism when only one array is
used."

The simulator performs the update with :func:`numpy.add.at` (which is exactly
"serialise conflicting updates") and counts the *extra* serialised operations so
the 1-array vs 8-array trade-off is measurable (see the ablation benchmark).
"""

from __future__ import annotations

import numpy as np

from .counters import KernelCounters
from .device import DeviceSpec
from .errors import AtomicsError


def _conflict_cost(indices: np.ndarray, warp_size: int) -> int:
    """Extra serialised replays: sum over warps of (accesses - distinct addresses)."""
    n = indices.size
    if n == 0:
        return 0
    pad = (-n) % warp_size
    idx = indices.astype(np.int64, copy=False)
    if pad:
        # pad with unique negative sentinels so they never collide
        sentinels = -np.arange(1, pad + 1, dtype=np.int64)
        idx = np.concatenate([idx, sentinels])
    per_warp = np.sort(idx.reshape(-1, warp_size), axis=1)
    distinct = 1 + (np.diff(per_warp, axis=1) != 0).sum(axis=1)
    accesses = np.full(per_warp.shape[0], warp_size, dtype=np.int64)
    if pad:
        accesses[-1] -= pad
        distinct[-1] -= pad  # sentinels were all distinct
    return int((accesses - distinct).sum())


class AtomicUnit:
    """Executes atomic read-modify-write operations for one thread block."""

    def __init__(self, device: DeviceSpec, counters: KernelCounters):
        self.device = device
        self.counters = counters

    def add(
        self,
        array: np.ndarray,
        indices: np.ndarray,
        values,
        shared: bool = True,
    ) -> None:
        """``array[indices] += values`` with atomic semantics.

        ``indices`` may contain repeats; conflicting updates are applied
        sequentially (numpy ``add.at``) and the serialisation is charged to the
        ``atomic_conflicts`` counter.
        """
        if shared and not self.device.supports_shared_atomics:
            raise AtomicsError(
                f"device {self.device.name!r} does not support shared-memory atomics"
            )
        idx = np.asarray(indices, dtype=np.int64)
        vals = np.asarray(values)
        if vals.ndim == 0:
            vals = np.broadcast_to(vals, idx.shape)
        self.counters.atomic_operations += int(idx.size)
        self.counters.atomic_conflicts += _conflict_cost(idx, self.device.warp_size)
        np.add.at(array, idx, vals.astype(array.dtype, copy=False))

    def increment(self, array: np.ndarray, indices: np.ndarray, shared: bool = True) -> None:
        """Atomic ``array[indices] += 1`` (the Phase-2 bucket counting primitive)."""
        self.add(array, indices, 1, shared=shared)

    def exchange_max(self, array: np.ndarray, indices: np.ndarray, values) -> None:
        """Atomic maximum (used by some baselines for pivot bookkeeping)."""
        idx = np.asarray(indices, dtype=np.int64)
        vals = np.asarray(values)
        self.counters.atomic_operations += int(idx.size)
        self.counters.atomic_conflicts += _conflict_cost(idx, self.device.warp_size)
        np.maximum.at(array, idx, vals.astype(array.dtype, copy=False))


__all__ = ["AtomicUnit"]
