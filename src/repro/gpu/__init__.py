"""SIMT GPU simulator substrate.

This subpackage is the reproduction's replacement for the CUDA hardware the
paper runs on (see DESIGN.md §3): devices, global and shared memory with
coalescing / bank-conflict / atomic-contention accounting, warp divergence
tracking, block scheduling with an occupancy model and a device-time model that
turns counted work into predicted kernel time.

Typical usage::

    from repro.gpu import TESLA_C1060, KernelLauncher, grid_for

    launcher = KernelLauncher(TESLA_C1060)
    keys = launcher.gmem.from_host(host_keys)

    def double_kernel(ctx, buf):
        tile = ctx.load_tile(buf)
        ctx.charge_per_element(tile.size, 1)
        ctx.store_tile(buf, tile * 2)

    launcher.launch(double_kernel, grid_for(keys.size, 256, 8),
                    keys, problem_size=keys.size, phase="demo")
    print(launcher.trace.format_breakdown())
"""

from .atomics import AtomicUnit
from .block import BlockContext
from .counters import KernelCounters, TransferCounters
from .device import (
    DEVICE_PRESETS,
    GTX_285,
    TESLA_C1060,
    TINY_TEST_DEVICE,
    DeviceSpec,
    get_device,
)
from .errors import (
    AlgorithmFailure,
    AtomicsError,
    DeviceConfigError,
    GlobalMemoryError,
    GpuSimError,
    KernelExecutionError,
    LaunchConfigError,
    SharedMemoryError,
    SorterError,
    UnsupportedInputError,
)
from .grid import LaunchConfig, grid_for
from .kernel import KernelLauncher, kernel, launch
from .memory import DeviceArray, GlobalMemory
from .scheduler import Occupancy, chip_utilisation, occupancy_for
from .shared import SharedMemory
from .stream import DeviceStream, KernelRecord, KernelTrace
from .timing import DeviceTimeModel, KernelTime
from .warp import WarpExecutor

__all__ = [
    "AtomicUnit",
    "BlockContext",
    "KernelCounters",
    "TransferCounters",
    "DeviceSpec",
    "TESLA_C1060",
    "GTX_285",
    "TINY_TEST_DEVICE",
    "DEVICE_PRESETS",
    "get_device",
    "GpuSimError",
    "DeviceConfigError",
    "LaunchConfigError",
    "SharedMemoryError",
    "GlobalMemoryError",
    "AtomicsError",
    "KernelExecutionError",
    "SorterError",
    "UnsupportedInputError",
    "AlgorithmFailure",
    "LaunchConfig",
    "grid_for",
    "KernelLauncher",
    "kernel",
    "launch",
    "DeviceArray",
    "GlobalMemory",
    "Occupancy",
    "occupancy_for",
    "chip_utilisation",
    "SharedMemory",
    "KernelRecord",
    "KernelTrace",
    "DeviceStream",
    "DeviceTimeModel",
    "KernelTime",
    "WarpExecutor",
]
