"""Per-block shared memory with capacity enforcement and bank-conflict model.

Shared memory is the 16 KB on-chip scratchpad of a GT200 SM. The paper uses it
for (a) the splitter search tree ``bt`` in Phases 2 and 4, (b) the per-block
bucket counters, and (c) the sequences handled by the odd-even merge sorting
network inside the small-case sorter. All of these must fit in 16 KB, which is
why ``k = 128`` and the per-thread element count ``ell = 8`` are chosen the way
they are; the simulator enforces the capacity so configurations that would not
run on the real hardware fail loudly.

Bank conflicts: GT200 shared memory has 16 banks of 4-byte words; simultaneous
accesses by a half-warp to different words in the same bank serialise. The
estimate implemented here counts, per half-warp, the maximum number of distinct
words that map to one bank.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .counters import KernelCounters
from .device import DeviceSpec
from .errors import SharedMemoryError


class SharedMemory:
    """Shared-memory allocator and access model for one thread block."""

    def __init__(self, device: DeviceSpec, counters: KernelCounters,
                 capacity_bytes: Optional[int] = None):
        self.device = device
        self.counters = counters
        self.capacity_bytes = (
            device.shared_mem_per_sm if capacity_bytes is None else capacity_bytes
        )
        self._used_bytes = 0
        self._arrays: list[np.ndarray] = []

    # ------------------------------------------------------------- allocation
    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def remaining_bytes(self) -> int:
        return self.capacity_bytes - self._used_bytes

    def alloc(self, shape, dtype) -> np.ndarray:
        """Allocate a zero-initialised shared array for this block."""
        arr = np.zeros(shape, dtype=dtype)
        if self._used_bytes + arr.nbytes > self.capacity_bytes:
            raise SharedMemoryError(
                f"shared memory exhausted: requested {arr.nbytes} bytes, "
                f"{self._used_bytes} used of {self.capacity_bytes}"
            )
        self._used_bytes += arr.nbytes
        self._arrays.append(arr)
        return arr

    def can_fit(self, nbytes: int) -> bool:
        """Whether an additional allocation of ``nbytes`` would fit."""
        return self._used_bytes + nbytes <= self.capacity_bytes

    def elements_capacity(self, dtype, reserve_bytes: int = 0) -> int:
        """How many elements of ``dtype`` still fit (after ``reserve_bytes``)."""
        free = self.remaining_bytes - reserve_bytes
        return max(0, free // np.dtype(dtype).itemsize)

    # ----------------------------------------------------------------- access
    def load(self, array: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Read ``array[indices]`` with bank-conflict accounting."""
        idx = np.asarray(indices, dtype=np.int64)
        self._account(array, idx)
        return array[idx]

    def store(self, array: np.ndarray, indices: np.ndarray, values) -> None:
        """Write ``array[indices] = values`` with bank-conflict accounting."""
        idx = np.asarray(indices, dtype=np.int64)
        self._account(array, idx)
        array[idx] = values

    def broadcast_read(self, array: np.ndarray, index: int, lanes: int) -> np.ndarray:
        """All ``lanes`` threads read the same word — a conflict-free broadcast."""
        self.counters.shared_bytes_accessed += int(array.dtype.itemsize)
        return np.full(lanes, array[index], dtype=array.dtype)

    # --------------------------------------------------------------- internal
    def _account(self, array: np.ndarray, idx: np.ndarray) -> None:
        itemsize = int(array.dtype.itemsize)
        self.counters.shared_bytes_accessed += int(idx.size) * itemsize
        self.counters.shared_bank_conflicts += self.estimate_bank_conflicts(
            idx, itemsize
        )

    def estimate_bank_conflicts(self, idx: np.ndarray, itemsize: int) -> int:
        """Extra serialised shared-memory cycles for this access pattern.

        Accesses are grouped into half-warps of 16 lanes (GT200 services shared
        memory per half-warp). For each half-warp the cost is the maximum number
        of *distinct words* that map to the same bank; the conflict count is the
        cost minus one (a conflict-free access has cost one).
        """
        n = idx.size
        if n == 0:
            return 0
        banks = self.device.shared_mem_banks
        half = max(1, self.device.warp_size // 2)
        words = (idx * itemsize) // 4
        bank_of = words % banks
        pad = (-n) % half
        if pad:
            words = np.concatenate([words, np.full(pad, -1, dtype=np.int64)])
            bank_of = np.concatenate([bank_of, np.full(pad, -1, dtype=np.int64)])
        words = words.reshape(-1, half)
        bank_of = bank_of.reshape(-1, half)
        conflicts = 0
        for row_words, row_banks in zip(words, bank_of):
            valid = row_words >= 0
            if not valid.any():
                continue
            rw = row_words[valid]
            rb = row_banks[valid]
            # Distinct (bank, word) pairs per bank: broadcasts of the same word
            # are free, distinct words on one bank serialise.
            order = np.lexsort((rw, rb))
            rb_sorted = rb[order]
            rw_sorted = rw[order]
            new_pair = np.ones(rb_sorted.size, dtype=bool)
            new_pair[1:] = (np.diff(rb_sorted) != 0) | (np.diff(rw_sorted) != 0)
            # count distinct words per bank
            distinct_banks, counts = np.unique(rb_sorted[new_pair], return_counts=True)
            if counts.size:
                conflicts += int(counts.max()) - 1
        return conflicts


__all__ = ["SharedMemory"]
