"""Exception types raised by the SIMT GPU simulator.

The simulator enforces a subset of the hardware constraints that a real CUDA
device would enforce (shared-memory capacity, block-size limits, buffer bounds)
so that kernels written against it cannot silently rely on behaviour that would
not exist on the paper's target hardware (an NVidia Tesla C1060 / GTX 285).
"""

from __future__ import annotations


class GpuSimError(Exception):
    """Base class for all simulator errors."""


class DeviceConfigError(GpuSimError):
    """Raised when a :class:`~repro.gpu.device.DeviceSpec` is inconsistent."""


class LaunchConfigError(GpuSimError):
    """Raised when a kernel launch configuration violates device limits.

    Examples: more threads per block than ``max_threads_per_block``, a
    non-positive grid, or a block size that is not a multiple of the warp size
    when the kernel requires full warps.
    """


class SharedMemoryError(GpuSimError):
    """Raised when a block allocates more shared memory than the SM provides."""


class GlobalMemoryError(GpuSimError):
    """Raised on out-of-bounds or type-mismatched global memory access."""


class AtomicsError(GpuSimError):
    """Raised when atomics are used on a device that does not support them."""


class KernelExecutionError(GpuSimError):
    """Raised when a kernel body fails; wraps the original exception."""

    def __init__(self, kernel_name: str, block_id: int, original: BaseException):
        self.kernel_name = kernel_name
        self.block_id = block_id
        self.original = original
        super().__init__(
            f"kernel {kernel_name!r} failed in block {block_id}: {original!r}"
        )


class SorterError(GpuSimError):
    """Base class for errors raised by sorting algorithms built on the simulator."""


class UnsupportedInputError(SorterError):
    """Raised when a sorter is given an input type it does not accept.

    This mirrors the paper's experimental setup, where several of the published
    implementations only accept specific key types (e.g. hybrid sort only sorts
    ``float32`` keys) and are therefore omitted from the other plots.
    """


class AlgorithmFailure(SorterError):
    """Raised when an algorithm fails on a legal input.

    The paper reports that hybrid sort *crashes* on the DeterministicDuplicates
    distribution; the reproduction models that behaviour with this exception so
    the harness can record a DNF instead of silently producing wrong output.
    """
