"""Warp-level bookkeeping: SIMT divergence accounting.

A GT200 SM executes threads in warps of 32. If the lanes of a warp disagree on
a conditional branch, both sides execute serially ("conditional branching" in
Section 2 of the paper). The paper's branch-free search-tree traversal
(Algorithm 2, adapted from super-scalar sample sort) exists precisely to keep
this divergence at zero: the conditional increment ``j := 2j + (e > bt[j])`` is
a predicated instruction all lanes execute identically.

Kernels report their branch structure to :class:`WarpExecutor`, which counts
how many warp-branches diverged and how much extra work the divergence caused.
"""

from __future__ import annotations

import numpy as np

from .counters import KernelCounters
from .device import DeviceSpec


class WarpExecutor:
    """Tracks warp composition and divergence for one thread block."""

    def __init__(self, device: DeviceSpec, num_threads: int, counters: KernelCounters):
        self.device = device
        self.num_threads = int(num_threads)
        self.counters = counters
        self.warp_size = device.warp_size

    @property
    def num_warps(self) -> int:
        return -(-self.num_threads // self.warp_size)

    def lane_ids(self) -> np.ndarray:
        """Lane index (0..warp_size-1) of every thread in the block."""
        return np.arange(self.num_threads) % self.warp_size

    def warp_ids(self) -> np.ndarray:
        """Warp index of every thread in the block."""
        return np.arange(self.num_threads) // self.warp_size

    # ------------------------------------------------------------- divergence
    def branch(self, taken_mask: np.ndarray) -> int:
        """Record a data-dependent branch evaluated by every thread.

        ``taken_mask`` is a boolean array with one entry per thread (or per
        logical work item laid out in thread order). Returns the number of warps
        that diverged, after updating the counters. A warp diverges when its
        lanes do not all agree.
        """
        mask = np.asarray(taken_mask, dtype=bool).ravel()
        n = mask.size
        if n == 0:
            return 0
        pad = (-n) % self.warp_size
        if pad:
            # inactive padded lanes follow the last real lane, causing no
            # additional divergence
            mask = np.concatenate([mask, np.full(pad, mask[-1])])
        per_warp = mask.reshape(-1, self.warp_size)
        any_taken = per_warp.any(axis=1)
        all_taken = per_warp.all(axis=1)
        diverged = int(np.count_nonzero(any_taken & ~all_taken))
        self.counters.total_branches += per_warp.shape[0]
        self.counters.divergent_branches += diverged
        return diverged

    def predicated(self, count_items: int, instructions_per_item: int = 1) -> None:
        """Record predicated (branch-free) execution of ``count_items`` items.

        Predication converts control dependence into data dependence: every lane
        executes the instruction and conditionally commits the result, so no
        divergence is recorded — only the instruction cost.
        """
        self.counters.instructions += int(count_items) * int(instructions_per_item)

    def uniform_branch(self, count_warps: int | None = None) -> None:
        """Record a branch whose condition is uniform across each warp."""
        warps = self.num_warps if count_warps is None else int(count_warps)
        self.counters.total_branches += warps


__all__ = ["WarpExecutor"]
