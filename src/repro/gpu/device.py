"""Device descriptions for the SIMT GPU simulator.

The paper evaluates on two GT200-class NVidia GPUs:

* **Tesla C1060** — 30 streaming multiprocessors (SMs) with 8 scalar processors
  (SPs) each (240 cores), 1.296 GHz, 4 GB of device memory, measured memory
  bandwidth of 73.3 GB/s, 16 KB shared memory and 16384 32-bit registers per SM.
* **Zotac GTX 285** — same SM/SP configuration but clocked at 1.476 GHz with a
  measured bandwidth of 124.7 GB/s.

Figure 6 of the paper uses the pair to argue which algorithms are memory-bound
(radix sorts improve ~25–30 % on the GTX 285) versus compute-bound (merge and
sample sort improve only ~18 %). The reproduction keeps both presets so the same
experiment can be replayed on the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .errors import DeviceConfigError


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated CUDA-like device.

    Only attributes that the performance model consumes are included; anything
    that does not influence the paper's analysis (texture caches, graphics
    state, ...) is deliberately left out.
    """

    name: str
    #: Number of streaming multiprocessors.
    sm_count: int
    #: Scalar processors (CUDA cores) per SM.
    sps_per_sm: int
    #: Shader clock in GHz (the clock the SPs run at).
    clock_ghz: float
    #: Sustained global-memory bandwidth in GB/s (the paper reports *measured*
    #: bandwidth, not the theoretical peak, so the presets do too).
    mem_bandwidth_gb_s: float
    #: Device memory capacity in bytes.
    global_mem_bytes: int = 4 * 1024**3
    #: Shared memory per SM in bytes (16 KB on GT200).
    shared_mem_per_sm: int = 16 * 1024
    #: 32-bit registers per SM (16384 on GT200 = 64 KB of register space).
    registers_per_sm: int = 16384
    #: Hardware limit on resident threads per SM (1024 on GT200: 32 warps).
    max_threads_per_sm: int = 1024
    #: Hardware limit on resident blocks per SM.
    max_blocks_per_sm: int = 8
    #: Maximum threads per block.
    max_threads_per_block: int = 512
    #: SIMT warp width.
    warp_size: int = 32
    #: Memory segment size used for coalescing. GT200 issues 32/64/128-byte
    #: transactions; modelling the finest (32-byte) granularity means a fully
    #: coalesced warp still moves exactly its payload while a fully scattered
    #: warp of 4-byte accesses is inflated 8x — matching the hardware's
    #: behaviour for the scatter-heavy Phase 4 the paper discusses.
    mem_transaction_bytes: int = 32
    #: Number of shared-memory banks.
    shared_mem_banks: int = 16
    #: Global memory latency in cycles (only used for latency-hiding heuristics).
    mem_latency_cycles: int = 450
    #: Whether shared-memory atomics are available (compute capability >= 1.2).
    supports_shared_atomics: bool = True
    #: Fixed cost of launching one kernel, in microseconds.
    kernel_launch_overhead_us: float = 5.0
    #: Average scalar instructions retired per SP per clock (issue efficiency).
    instructions_per_clock: float = 0.9

    def __post_init__(self) -> None:
        if self.sm_count <= 0 or self.sps_per_sm <= 0:
            raise DeviceConfigError("device must have a positive number of cores")
        if self.clock_ghz <= 0:
            raise DeviceConfigError("clock must be positive")
        if self.mem_bandwidth_gb_s <= 0:
            raise DeviceConfigError("memory bandwidth must be positive")
        if self.warp_size <= 0 or self.max_threads_per_block % self.warp_size:
            raise DeviceConfigError(
                "max_threads_per_block must be a positive multiple of warp_size"
            )
        if self.shared_mem_per_sm <= 0:
            raise DeviceConfigError("shared memory size must be positive")
        if not 0 < self.instructions_per_clock <= 4:
            raise DeviceConfigError("instructions_per_clock out of plausible range")

    # ------------------------------------------------------------------ derived
    @property
    def core_count(self) -> int:
        """Total scalar processors on the chip (240 for both paper devices)."""
        return self.sm_count * self.sps_per_sm

    @property
    def peak_instruction_rate(self) -> float:
        """Scalar instructions per microsecond the whole chip can retire."""
        return self.core_count * self.clock_ghz * 1e3 * self.instructions_per_clock

    @property
    def bytes_per_us(self) -> float:
        """Global memory bytes per microsecond at the sustained bandwidth."""
        return self.mem_bandwidth_gb_s * 1e3

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    @property
    def concurrent_launch_slots(self) -> int:
        """Stream slots the launch scheduler may pack concurrently.

        Scaled with chip width: roughly one slot per ten SMs, never fewer
        than two (even the tiny test device can overlap a pair of small
        launches). GT200-class parts (30 SMs) expose three slots. This is a
        *timing* property only — it shapes the simulated makespan, never the
        output bytes — so it deliberately stays out of
        :attr:`functional_fingerprint`.
        """
        return max(2, self.sm_count // 10)

    @property
    def device_sync_us(self) -> float:
        """Cost of one device-local synchronisation, in microseconds.

        A persistent (fused) kernel replaces the global barrier between two
        phase launches with an on-device sync: every resident block drains
        its outstanding global-memory traffic and passes a flag, which costs
        roughly one round-trip of global-memory latency instead of a full
        launch tear-down/set-up. Like :attr:`concurrent_launch_slots` this is
        a *timing* property only — it shapes predicted fused-kernel times,
        never output bytes — so it stays out of
        :attr:`functional_fingerprint`.
        """
        return self.mem_latency_cycles / (self.clock_ghz * 1e3)

    @property
    def functional_fingerprint(self) -> tuple:
        """The fields that can influence *what* a sort computes, not how fast.

        Output bytes depend on the device only through the execution geometry
        (the shared-memory clamp of the small-case sorter threshold, launch
        validation, warp/bank shapes); clock, bandwidth, memory capacity,
        latency and launch overhead only move predicted times. Two devices
        with equal fingerprints are *functionally interchangeable*: a sorter
        produces byte-identical output on either. The paper's pair — Tesla
        C1060 and GTX 285 — share one fingerprint (same GT200 geometry,
        different clock/bandwidth), which is what makes mixed pools safe.
        """
        return (
            self.sm_count,
            self.sps_per_sm,
            self.shared_mem_per_sm,
            self.registers_per_sm,
            self.max_threads_per_sm,
            self.max_blocks_per_sm,
            self.max_threads_per_block,
            self.warp_size,
            self.mem_transaction_bytes,
            self.shared_mem_banks,
            self.supports_shared_atomics,
        )

    def with_(self, **kwargs) -> "DeviceSpec":
        """Return a copy of this spec with selected fields replaced.

        Useful for what-if studies (e.g. scaling bandwidth to see when an
        algorithm flips from compute-bound to memory-bound).
        """
        return replace(self, **kwargs)

    def describe(self) -> str:
        """Human-readable one-paragraph description used by reports."""
        return (
            f"{self.name}: {self.sm_count} SMs x {self.sps_per_sm} SPs "
            f"({self.core_count} cores) @ {self.clock_ghz:.3f} GHz, "
            f"{self.mem_bandwidth_gb_s:.1f} GB/s, "
            f"{self.shared_mem_per_sm // 1024} KB shared memory/SM, "
            f"warp size {self.warp_size}"
        )


#: The paper's primary evaluation platform.
TESLA_C1060 = DeviceSpec(
    name="Tesla C1060",
    sm_count=30,
    sps_per_sm=8,
    clock_ghz=1.296,
    mem_bandwidth_gb_s=73.3,
    global_mem_bytes=4 * 1024**3,
)

#: The secondary device used for the bandwidth/compute-bound analysis (Figure 6).
GTX_285 = DeviceSpec(
    name="Zotac GTX 285",
    sm_count=30,
    sps_per_sm=8,
    clock_ghz=1.476,
    mem_bandwidth_gb_s=124.7,
    global_mem_bytes=1 * 1024**3,
)

#: A deliberately tiny device used by the test-suite so that multi-wave
#: scheduling, shared-memory pressure and multi-pass distribution are exercised
#: with small inputs.
TINY_TEST_DEVICE = DeviceSpec(
    name="TinyTestDevice",
    sm_count=2,
    sps_per_sm=8,
    clock_ghz=1.0,
    mem_bandwidth_gb_s=10.0,
    global_mem_bytes=64 * 1024**2,
    shared_mem_per_sm=4 * 1024,
    max_threads_per_sm=256,
    max_threads_per_block=128,
)

#: Registry of named presets for the CLI/harness.
DEVICE_PRESETS: dict[str, DeviceSpec] = {
    "tesla-c1060": TESLA_C1060,
    "gtx-285": GTX_285,
    "tiny-test": TINY_TEST_DEVICE,
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device preset by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in DEVICE_PRESETS:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(DEVICE_PRESETS)}"
        )
    return DEVICE_PRESETS[key]


__all__ = [
    "DeviceSpec",
    "TESLA_C1060",
    "GTX_285",
    "TINY_TEST_DEVICE",
    "DEVICE_PRESETS",
    "get_device",
]
