"""Kernel launch configuration (grid / block geometry).

The paper's distribution kernels use a one-dimensional grid of ``p`` thread
blocks, each with ``t = 256`` threads processing ``ell = 8`` elements per
thread, i.e. a tile of ``t * ell = 2048`` elements per block. This module holds
the small amount of arithmetic needed to derive tile boundaries from an input
size and to validate a launch against the device limits.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec
from .errors import LaunchConfigError


@dataclass(frozen=True)
class LaunchConfig:
    """Geometry of one kernel launch."""

    grid_dim: int
    block_dim: int
    #: Sequential elements each thread processes (the paper's ``ell``).
    elements_per_thread: int = 1
    #: Dynamic shared memory the kernel requests per block, in bytes.
    shared_mem_bytes: int = 0

    def __post_init__(self) -> None:
        if self.grid_dim <= 0:
            raise LaunchConfigError(f"grid_dim must be positive, got {self.grid_dim}")
        if self.block_dim <= 0:
            raise LaunchConfigError(f"block_dim must be positive, got {self.block_dim}")
        if self.elements_per_thread <= 0:
            raise LaunchConfigError(
                f"elements_per_thread must be positive, got {self.elements_per_thread}"
            )
        if self.shared_mem_bytes < 0:
            raise LaunchConfigError("shared_mem_bytes must be non-negative")

    @property
    def tile_size(self) -> int:
        """Elements processed by one block."""
        return self.block_dim * self.elements_per_thread

    @property
    def total_threads(self) -> int:
        return self.grid_dim * self.block_dim

    @property
    def total_elements(self) -> int:
        """Upper bound on elements covered by the whole grid."""
        return self.grid_dim * self.tile_size

    def validate(self, device: DeviceSpec) -> None:
        """Raise :class:`LaunchConfigError` if the launch violates device limits."""
        if self.block_dim > device.max_threads_per_block:
            raise LaunchConfigError(
                f"block_dim {self.block_dim} exceeds device limit "
                f"{device.max_threads_per_block}"
            )
        if self.shared_mem_bytes > device.shared_mem_per_sm:
            raise LaunchConfigError(
                f"requested {self.shared_mem_bytes} bytes of shared memory but the "
                f"SM only has {device.shared_mem_per_sm}"
            )

    def tile_bounds(self, block_id: int, n: int) -> tuple[int, int]:
        """Half-open element range [start, end) covered by ``block_id`` for an
        input of ``n`` elements. The final tile may be partial."""
        start = block_id * self.tile_size
        end = min(n, start + self.tile_size)
        return start, max(start, end)


def grid_for(n: int, block_dim: int, elements_per_thread: int = 1,
             shared_mem_bytes: int = 0) -> LaunchConfig:
    """Compute the launch configuration covering ``n`` elements.

    This is the ``p = ceil(n / (t * ell))`` of Section 4.
    """
    if n < 0:
        raise LaunchConfigError(f"cannot launch a grid for negative n={n}")
    tile = block_dim * elements_per_thread
    grid = max(1, -(-n // tile))
    return LaunchConfig(
        grid_dim=grid,
        block_dim=block_dim,
        elements_per_thread=elements_per_thread,
        shared_mem_bytes=shared_mem_bytes,
    )


__all__ = ["LaunchConfig", "grid_for"]
