"""Kernel launch configuration (grid / block geometry).

The paper's distribution kernels use a one-dimensional grid of ``p`` thread
blocks, each with ``t = 256`` threads processing ``ell = 8`` elements per
thread, i.e. a tile of ``t * ell = 2048`` elements per block. This module holds
the small amount of arithmetic needed to derive tile boundaries from an input
size and to validate a launch against the device limits.

For level-synchronous execution the distribution kernels are launched once per
recursion *level* over every same-depth segment at once. :class:`BlockMap`
captures the block -> (segment, tile) decomposition of such a fused grid: the
first ``ceil(size_0 / tile)`` blocks cover segment 0, the next ones segment 1,
and so on — the same flattening the CUDA implementation performs when it
processes "all buckets of a level" with a single kernel launch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .device import DeviceSpec
from .errors import LaunchConfigError


@dataclass(frozen=True)
class LaunchConfig:
    """Geometry of one kernel launch."""

    grid_dim: int
    block_dim: int
    #: Sequential elements each thread processes (the paper's ``ell``).
    elements_per_thread: int = 1
    #: Dynamic shared memory the kernel requests per block, in bytes.
    shared_mem_bytes: int = 0

    def __post_init__(self) -> None:
        if self.grid_dim <= 0:
            raise LaunchConfigError(f"grid_dim must be positive, got {self.grid_dim}")
        if self.block_dim <= 0:
            raise LaunchConfigError(f"block_dim must be positive, got {self.block_dim}")
        if self.elements_per_thread <= 0:
            raise LaunchConfigError(
                f"elements_per_thread must be positive, got {self.elements_per_thread}"
            )
        if self.shared_mem_bytes < 0:
            raise LaunchConfigError("shared_mem_bytes must be non-negative")

    @property
    def tile_size(self) -> int:
        """Elements processed by one block."""
        return self.block_dim * self.elements_per_thread

    @property
    def total_threads(self) -> int:
        return self.grid_dim * self.block_dim

    @property
    def total_elements(self) -> int:
        """Upper bound on elements covered by the whole grid."""
        return self.grid_dim * self.tile_size

    def validate(self, device: DeviceSpec) -> None:
        """Raise :class:`LaunchConfigError` if the launch violates device limits."""
        if self.block_dim > device.max_threads_per_block:
            raise LaunchConfigError(
                f"block_dim {self.block_dim} exceeds device limit "
                f"{device.max_threads_per_block}"
            )
        if self.shared_mem_bytes > device.shared_mem_per_sm:
            raise LaunchConfigError(
                f"requested {self.shared_mem_bytes} bytes of shared memory but the "
                f"SM only has {device.shared_mem_per_sm}"
            )

    def tile_bounds(self, block_id: int, n: int) -> tuple[int, int]:
        """Half-open element range [start, end) covered by ``block_id`` for an
        input of ``n`` elements. The final tile may be partial."""
        start = block_id * self.tile_size
        end = min(n, start + self.tile_size)
        return start, max(start, end)


def grid_for(n: int, block_dim: int, elements_per_thread: int = 1,
             shared_mem_bytes: int = 0) -> LaunchConfig:
    """Compute the launch configuration covering ``n`` elements.

    This is the ``p = ceil(n / (t * ell))`` of Section 4.
    """
    if n < 0:
        raise LaunchConfigError(f"cannot launch a grid for negative n={n}")
    tile = block_dim * elements_per_thread
    grid = max(1, -(-n // tile))
    return LaunchConfig(
        grid_dim=grid,
        block_dim=block_dim,
        elements_per_thread=elements_per_thread,
        shared_mem_bytes=shared_mem_bytes,
    )


@dataclass(frozen=True)
class BlockMap:
    """Block -> (segment, tile) mapping of one fused multi-segment launch.

    ``segment_ids[b]`` is the segment block ``b`` works on and ``tile_ids[b]``
    is the block's tile index *within* that segment. ``block_base[s]`` is the
    first block of segment ``s`` and ``blocks_per_segment[s]`` how many blocks
    cover it, so ``block_base[s] + t`` is tile ``t`` of segment ``s``.
    ``elem_base[s]`` is the number of elements in all earlier segments (the
    segment's offset inside any per-element slab of the level), and ``launch``
    is the fused grid itself — every phase of a level launches with the same
    geometry, so it lives on the map rather than being re-derived per phase.
    """

    segment_ids: np.ndarray
    tile_ids: np.ndarray
    blocks_per_segment: np.ndarray
    block_base: np.ndarray
    elem_base: np.ndarray
    tile_size: int
    launch: LaunchConfig

    @property
    def num_blocks(self) -> int:
        return int(self.segment_ids.size)

    @property
    def num_segments(self) -> int:
        return int(self.blocks_per_segment.size)

    def tile_bounds(self, block_id: int, sizes: Sequence[int]) -> tuple[int, int, int]:
        """``(segment, start, end)`` of the tile owned by ``block_id``.

        ``start``/``end`` are element offsets *within* the segment; the final
        tile of a segment may be partial.
        """
        segment = int(self.segment_ids[block_id])
        tile = int(self.tile_ids[block_id])
        start = tile * self.tile_size
        end = min(int(sizes[segment]), start + self.tile_size)
        return segment, start, max(start, end)

    def tile_starts(self) -> np.ndarray:
        """Per-block tile start offsets *within* each block's segment."""
        return self.tile_ids * self.tile_size

    def tile_lengths(self, sizes: Sequence[int]) -> np.ndarray:
        """Per-block tile lengths for the given segment sizes.

        The vectorised twin of :meth:`tile_bounds`: one call yields every
        block's (possibly ragged) tile length, which the block-vectorised
        kernels use to mask partial tiles.
        """
        sizes = np.asarray(sizes, dtype=np.int64)
        starts = self.tile_starts()
        return np.clip(sizes[self.segment_ids] - starts, 0, self.tile_size)


def batched_grid_for(
    sizes: Sequence[int],
    block_dim: int,
    elements_per_thread: int = 1,
    shared_mem_bytes: int = 0,
) -> tuple[LaunchConfig, BlockMap]:
    """Launch geometry covering several segments with one fused grid.

    Each segment ``s`` receives ``ceil(sizes[s] / (t * ell))`` consecutive
    blocks (at least one, so empty segments still own a block and the mapping
    stays invertible). Returns the fused :class:`LaunchConfig` together with
    the :class:`BlockMap` that kernels use to locate their tile.
    """
    sizes = np.asarray(list(sizes), dtype=np.int64)
    if sizes.size == 0:
        raise LaunchConfigError("batched_grid_for requires at least one segment")
    if np.any(sizes < 0):
        raise LaunchConfigError(f"segment sizes must be non-negative, got {sizes}")
    tile = block_dim * elements_per_thread
    blocks_per_segment = np.maximum(1, -(-sizes // tile))
    block_base = np.zeros(sizes.size, dtype=np.int64)
    np.cumsum(blocks_per_segment[:-1], out=block_base[1:])
    elem_base = np.zeros(sizes.size, dtype=np.int64)
    np.cumsum(sizes[:-1], out=elem_base[1:])
    total_blocks = int(blocks_per_segment.sum())
    segment_ids = np.repeat(np.arange(sizes.size, dtype=np.int64),
                            blocks_per_segment)
    tile_ids = np.arange(total_blocks, dtype=np.int64) - block_base[segment_ids]
    config = LaunchConfig(
        grid_dim=total_blocks,
        block_dim=block_dim,
        elements_per_thread=elements_per_thread,
        shared_mem_bytes=shared_mem_bytes,
    )
    block_map = BlockMap(
        segment_ids=segment_ids,
        tile_ids=tile_ids,
        blocks_per_segment=blocks_per_segment,
        block_base=block_base,
        elem_base=elem_base,
        tile_size=tile,
        launch=config,
    )
    return config, block_map


__all__ = ["LaunchConfig", "grid_for", "BlockMap", "batched_grid_for"]
