"""Hardware event counters collected while simulating kernels.

Every quantity the paper's performance argument rests on is counted explicitly:

* global-memory traffic, split into *requested* bytes and *transaction* bytes
  (the difference is the coalescing penalty discussed in Section 2 of the paper),
* shared-memory traffic and bank conflicts,
* dynamic instructions (scalar-thread instructions, the SIMT work),
* atomic operations and the serialisation they cause under contention
  (the 8-counter-array trick of Phase 2 exists to reduce exactly this number),
* divergent branches (the branch-free tree traversal exists to keep this at zero),
* barriers and kernel launches.

Counters are plain data and compose with ``+`` so that per-block counters can be
summed into per-kernel and per-sort totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class KernelCounters:
    """Accumulated event counts for one kernel launch (or a sum of launches)."""

    #: Bytes the threads asked to read from global memory.
    global_bytes_read: int = 0
    #: Bytes the threads asked to write to global memory.
    global_bytes_written: int = 0
    #: Number of memory transactions issued for global reads.
    global_read_transactions: int = 0
    #: Number of memory transactions issued for global writes.
    global_write_transactions: int = 0
    #: Minimum number of transactions had every access been perfectly coalesced.
    ideal_read_transactions: int = 0
    ideal_write_transactions: int = 0
    #: Bytes moved through per-SM shared memory.
    shared_bytes_accessed: int = 0
    #: Extra shared-memory cycles caused by bank conflicts.
    shared_bank_conflicts: int = 0
    #: Dynamic scalar-thread instructions executed.
    instructions: int = 0
    #: Atomic operations issued (shared or global).
    atomic_operations: int = 0
    #: Extra serialised atomic operations due to address contention.
    atomic_conflicts: int = 0
    #: Warp-level branches where the warp did not agree on one path.
    divergent_branches: int = 0
    #: Warp-level branches evaluated in total.
    total_branches: int = 0
    #: __syncthreads() style barriers executed per block.
    barriers: int = 0
    #: Number of kernel launches represented by this counter set.
    kernel_launches: int = 0

    # ------------------------------------------------------------------ algebra
    def __add__(self, other: "KernelCounters") -> "KernelCounters":
        if not isinstance(other, KernelCounters):
            return NotImplemented
        merged = KernelCounters()
        for f in fields(KernelCounters):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged

    def __iadd__(self, other: "KernelCounters") -> "KernelCounters":
        if not isinstance(other, KernelCounters):
            return NotImplemented
        for f in fields(KernelCounters):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def copy(self) -> "KernelCounters":
        out = KernelCounters()
        out += self
        return out

    # ------------------------------------------------------------- derived info
    @property
    def global_bytes_total(self) -> int:
        """Total requested global traffic in bytes (reads + writes)."""
        return self.global_bytes_read + self.global_bytes_written

    @property
    def global_transactions(self) -> int:
        return self.global_read_transactions + self.global_write_transactions

    @property
    def ideal_transactions(self) -> int:
        return self.ideal_read_transactions + self.ideal_write_transactions

    def coalescing_efficiency(self) -> float:
        """Fraction of issued transactions that were strictly necessary.

        1.0 means perfectly coalesced traffic; values < 1.0 mean the device
        moved more bus transactions than the requested bytes required, which the
        timing model translates into lower effective bandwidth.
        """
        issued = self.global_transactions
        if issued == 0:
            return 1.0
        return self.ideal_transactions / issued

    def divergence_rate(self) -> float:
        """Fraction of evaluated warp branches that diverged."""
        if self.total_branches == 0:
            return 0.0
        return self.divergent_branches / self.total_branches

    def atomic_serialisation(self) -> float:
        """Average number of serialised replays per atomic operation."""
        if self.atomic_operations == 0:
            return 0.0
        return self.atomic_conflicts / self.atomic_operations

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(KernelCounters)}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"KernelCounters({parts})"


@dataclass
class TransferCounters:
    """Host<->device transfer counters.

    The paper excludes host transfer time from its measurements ("we do not
    include the time for transferring the data from host CPU memory to GPU
    memory"); the reproduction still counts them so the exclusion is explicit
    rather than accidental.
    """

    host_to_device_bytes: int = 0
    device_to_host_bytes: int = 0

    def __add__(self, other: "TransferCounters") -> "TransferCounters":
        if not isinstance(other, TransferCounters):
            return NotImplemented
        return TransferCounters(
            self.host_to_device_bytes + other.host_to_device_bytes,
            self.device_to_host_bytes + other.device_to_host_bytes,
        )


def zeros() -> KernelCounters:
    """Return a fresh, zero-initialised counter set."""
    return KernelCounters()


__all__ = ["KernelCounters", "TransferCounters", "zeros"]
