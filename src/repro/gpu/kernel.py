"""Kernel launching for the SIMT simulator.

:func:`launch` is the simulator's counterpart of ``kernel<<<grid, block>>>``: it
validates the launch configuration against the device, runs the kernel body once
per thread block, aggregates the per-block event counters, asks the timing model
for a predicted execution time and (optionally) appends the launch to a
:class:`~repro.gpu.stream.KernelTrace`.

Two execution strategies share that accounting tail:

* :func:`launch` runs a scalar kernel body once per thread block in a Python
  loop — the *data* parallelism of a block is expressed inside the body with
  vectorised NumPy operations over "one lane per thread".
* :func:`launch_vectorized` runs a *block-vectorised* body exactly once over a
  :class:`~repro.gpu.vector.VectorContext` covering the whole grid, so the
  per-block Python loop disappears and the launch executes as stacked NumPy
  operations across all blocks. The body is contractually required to produce
  byte-identical data and identical counters to the scalar loop; both paths
  therefore emit indistinguishable :class:`~repro.gpu.stream.KernelRecord`
  entries (same name, phase, geometry, counters and predicted time).
"""

from __future__ import annotations

import functools
from typing import Callable, Optional

from ..backend.protocol import ArrayBackend
from ..backend.registry import get_backend
from .block import BlockContext
from .counters import KernelCounters
from .device import DeviceSpec
from .errors import KernelExecutionError
from .grid import LaunchConfig
from .memory import GlobalMemory
from .stream import KernelRecord, KernelTrace
from .timing import DeviceTimeModel, FusedKernelTime, KernelTime
from .vector import VectorContext

KernelFn = Callable[..., None]


def kernel(name: Optional[str] = None, phase: str = "kernel",
           regs_per_thread: int = 16) -> Callable[[KernelFn], KernelFn]:
    """Decorator attaching launch metadata to a kernel body.

    The metadata (display name, default phase label, register estimate) is used
    by :func:`launch` when the caller does not override it.
    """

    def wrap(fn: KernelFn) -> KernelFn:
        fn.__kernel_name__ = name or fn.__name__
        fn.__kernel_phase__ = phase
        fn.__kernel_regs__ = regs_per_thread

        @functools.wraps(fn)
        def body(*args, **kwargs):
            return fn(*args, **kwargs)

        body.__kernel_name__ = fn.__kernel_name__
        body.__kernel_phase__ = fn.__kernel_phase__
        body.__kernel_regs__ = fn.__kernel_regs__
        return body

    return wrap


def _kernel_metadata(fn: KernelFn, phase: Optional[str], name: Optional[str],
                     regs_per_thread: Optional[int]) -> tuple[str, str, int]:
    kernel_name = name or getattr(fn, "__kernel_name__", fn.__name__)
    kernel_phase = phase or getattr(fn, "__kernel_phase__", "kernel")
    regs = regs_per_thread if regs_per_thread is not None else getattr(
        fn, "__kernel_regs__", 16
    )
    return kernel_name, kernel_phase, regs


def _record_launch(
    counters: KernelCounters,
    launch_config: LaunchConfig,
    device: DeviceSpec,
    kernel_name: str,
    kernel_phase: str,
    regs: int,
    trace: Optional[KernelTrace],
    time_model: Optional[DeviceTimeModel],
) -> tuple[KernelCounters, KernelTime]:
    """Shared tail of both launch strategies: predict time, append the record."""
    model = time_model or DeviceTimeModel(device)
    time = model.kernel_time(counters, launch_config, regs)
    if trace is not None:
        trace.append(
            KernelRecord(
                name=kernel_name,
                phase=kernel_phase,
                launch=launch_config,
                counters=counters,
                time=time,
            )
        )
    return counters, time


def launch(
    fn: KernelFn,
    launch_config: LaunchConfig,
    device: DeviceSpec,
    gmem: GlobalMemory,
    *args,
    problem_size: Optional[int] = None,
    trace: Optional[KernelTrace] = None,
    phase: Optional[str] = None,
    name: Optional[str] = None,
    regs_per_thread: Optional[int] = None,
    time_model: Optional[DeviceTimeModel] = None,
    **kwargs,
) -> tuple[KernelCounters, KernelTime]:
    """Run ``fn(ctx, *args, **kwargs)`` for every block of the grid.

    Returns the aggregated counters and the predicted kernel time. If ``trace``
    is given, a :class:`KernelRecord` is appended to it.
    """
    launch_config.validate(device)
    counters = KernelCounters()
    counters.kernel_launches = 1
    kernel_name, kernel_phase, regs = _kernel_metadata(
        fn, phase, name, regs_per_thread
    )

    for block_id in range(launch_config.grid_dim):
        ctx = BlockContext(
            device=device,
            gmem=gmem,
            launch=launch_config,
            block_id=block_id,
            counters=counters,
            problem_size=problem_size,
        )
        try:
            fn(ctx, *args, **kwargs)
        except KernelExecutionError:
            raise
        except Exception as exc:  # noqa: BLE001 - wrap with launch context
            raise KernelExecutionError(kernel_name, block_id, exc) from exc

    return _record_launch(counters, launch_config, device, kernel_name,
                          kernel_phase, regs, trace, time_model)


def launch_vectorized(
    fn: KernelFn,
    launch_config: LaunchConfig,
    device: DeviceSpec,
    gmem: GlobalMemory,
    *args,
    problem_size: Optional[int] = None,
    trace: Optional[KernelTrace] = None,
    phase: Optional[str] = None,
    name: Optional[str] = None,
    regs_per_thread: Optional[int] = None,
    time_model: Optional[DeviceTimeModel] = None,
    backend: Optional[ArrayBackend] = None,
    **kwargs,
) -> tuple[KernelCounters, KernelTime]:
    """Run a block-vectorised body once over *all* blocks of the grid.

    ``fn`` receives a :class:`~repro.gpu.vector.VectorContext` instead of a
    per-block :class:`~repro.gpu.block.BlockContext` and must perform the whole
    grid's work as stacked array operations, charging counters per block. The
    ``backend`` selects which :class:`~repro.backend.protocol.ArrayBackend`
    runs the math (default NumPy); the launch accounting (one
    :class:`KernelRecord`, one predicted time, one ``kernel_launches``
    increment) is identical to :func:`launch` under every backend, so traces
    from the two strategies are directly comparable.
    """
    launch_config.validate(device)
    counters = KernelCounters()
    counters.kernel_launches = 1
    kernel_name, kernel_phase, regs = _kernel_metadata(
        fn, phase, name, regs_per_thread
    )

    ctx = VectorContext(
        device=device,
        gmem=gmem,
        launch=launch_config,
        counters=counters,
        problem_size=problem_size,
        backend=backend,
    )
    try:
        fn(ctx, *args, **kwargs)
    except KernelExecutionError:
        raise
    except Exception as exc:  # noqa: BLE001 - wrap with launch context
        raise KernelExecutionError(kernel_name, -1, exc) from exc

    return _record_launch(counters, launch_config, device, kernel_name,
                          kernel_phase, regs, trace, time_model)


def fuse_records(records: list[KernelRecord], device: DeviceSpec, *,
                 name: str, phase: str) -> KernelRecord:
    """Fold the launches of one persistent kernel into a single fused record.

    The persistent-threads idiom: the phase bodies ran back-to-back inside one
    resident grid, so the fused record charges exactly **one** kernel-launch
    overhead, and each interior phase boundary costs a device-local sync
    (:attr:`~repro.gpu.device.DeviceSpec.device_sync_us`) instead of a full
    kernel tear-down/relaunch. Counters are the exact sum of the constituents
    (with ``kernel_launches`` collapsed to 1); the per-constituent *work* —
    each predicted time minus its own launch overhead — is preserved verbatim
    in a :class:`~repro.gpu.timing.FusedKernelTime`, and ``fused_phases``
    carries the per-phase breakdown (plus the fused overhead under the fused
    record's own phase tag) so the parts sum exactly to the record's total.
    """
    if not records:
        raise ValueError("cannot fuse an empty launch sequence")
    counters = KernelCounters()
    for record in records:
        counters += record.counters
    # One resident grid means one dispatch, whatever the body launched.
    counters.kernel_launches = 1

    work_us = 0.0
    memory_us = 0.0
    compute_us = 0.0
    phase_work: dict[str, float] = {}
    for record in records:
        work = record.time.total_us - record.time.overhead_us
        work_us += work
        memory_us += record.time.memory_us
        compute_us += record.time.compute_us
        phase_work[record.phase] = phase_work.get(record.phase, 0.0) + work
    overhead_us = (device.kernel_launch_overhead_us
                   + (len(records) - 1) * device.device_sync_us)
    time = FusedKernelTime(
        memory_us=memory_us, compute_us=compute_us, overhead_us=overhead_us,
        overlap=0.0, work_us=work_us,
    )
    # The resident grid is sized for the widest constituent: a persistent
    # kernel launches once with enough blocks for its biggest stage.
    resident = max(records, key=lambda r: r.launch.grid_dim).launch
    fused_phases = tuple(phase_work.items()) + ((phase, overhead_us),)
    return KernelRecord(
        name=name, phase=phase, launch=resident, counters=counters,
        time=time, fused_phases=fused_phases, constituents=tuple(records),
    )


class KernelLauncher:
    """Convenience object bundling device, memory, trace and time model.

    Sorting algorithms hold one launcher for the duration of a sort so that all
    their kernels share the same accounting context::

        launcher = KernelLauncher(device)
        keys = launcher.gmem.from_host(host_keys)
        launcher.launch(my_kernel, grid_for(n, 256, 8), keys, phase="phase2")
        print(launcher.trace.total_time_us)
    """

    def __init__(self, device: DeviceSpec, gmem: Optional[GlobalMemory] = None,
                 trace: Optional[KernelTrace] = None,
                 backend: Optional[str] = None):
        self.device = device
        self.gmem = gmem if gmem is not None else GlobalMemory(device)
        self.trace = trace if trace is not None else KernelTrace()
        self.time_model = DeviceTimeModel(device)
        # The backend axis: a registry name (or None for the default NumPy
        # math). Resolved once so every vectorised launch shares one instance.
        self.backend = None if backend is None else get_backend(backend)

    def launch(self, fn: KernelFn, launch_config: LaunchConfig, *args,
               **kwargs) -> tuple[KernelCounters, KernelTime]:
        kwargs.setdefault("trace", self.trace)
        kwargs.setdefault("time_model", self.time_model)
        return launch(fn, launch_config, self.device, self.gmem, *args, **kwargs)

    def launch_vectorized(self, fn: KernelFn, launch_config: LaunchConfig,
                          *args, **kwargs) -> tuple[KernelCounters, KernelTime]:
        kwargs.setdefault("trace", self.trace)
        kwargs.setdefault("time_model", self.time_model)
        kwargs.setdefault("backend", self.backend)
        return launch_vectorized(fn, launch_config, self.device, self.gmem,
                                 *args, **kwargs)

    def launch_persistent(self, body: Callable[["KernelLauncher"], object], *,
                          name: str, phase: str):
        """Run several phase bodies as **one** resident (persistent) launch.

        ``body`` receives a sub-launcher sharing this launcher's device,
        global memory, time model and backend, but recording into a scratch
        trace — every kernel it launches computes exactly the bytes it would
        standalone (same math, same memory, same backend). The scratch
        records are then folded by :func:`fuse_records` into a single fused
        :class:`~repro.gpu.stream.KernelRecord` on this launcher's trace,
        charging one launch overhead plus one device-local sync per interior
        stage boundary instead of N launches and N-1 global barriers.

        Returns ``(body_result, fused_record)``.
        """
        sub = KernelLauncher(self.device, gmem=self.gmem, trace=KernelTrace())
        sub.time_model = self.time_model
        sub.backend = self.backend
        result = body(sub)
        fused = fuse_records(sub.trace.records, self.device,
                             name=name, phase=phase)
        self.trace.append(fused)
        return result, fused

    @property
    def total_time_us(self) -> float:
        return self.trace.total_time_us


__all__ = ["kernel", "launch", "launch_vectorized", "fuse_records",
           "KernelLauncher"]
