"""Input distributions of the experimental study (§6).

The paper uses "a commonly accepted set of distributions motivated and
described in [7]" — Helman, Bader and JáJá's randomized parallel sorting study —
parameterised with ``p = 240`` (the number of scalar processors of a Tesla
C1060) and a Mersenne Twister as the uniform source:

* **Uniform** — uniform random keys in ``[0, 2^32 - 1]``.
* **Gaussian** — each key is the average of 4 uniform random values.
* **Bucket sorted** — the input is split into ``p`` blocks; within block ``i``
  the ``j``-th group of ``n/p^2`` elements is drawn from the ``j``-th of ``p``
  equal key sub-ranges, producing a globally "bucketised" but locally random
  sequence.
* **Staggered** — ``p`` blocks; block ``i <= p/2`` gets keys from sub-range
  ``2i - 1``-ish (high half interleave), the rest from the low half; adversarial
  for uniformity-assuming partitioners.
* **Deterministic duplicates** — the first ``p/2`` blocks are the constant
  ``log n``, the next ``p/4`` blocks ``log(n/2)``, and so on: only ``O(log n)``
  distinct keys in the whole input (a minimum-entropy workload).
* **Sorted** — an already-sorted uniform input (the paper's reported worst case
  for its implementation).
* **Zero** — all keys equal; the extreme entropy-zero case (used by the test
  suite and the robustness example).

Every generator returns ``uint64`` values in ``[0, 2^32)`` so that the same
logical distribution can later be cast to the paper's three key types (32-bit
integers, floats, 64-bit integers) by :mod:`repro.datagen.keytypes`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

#: Number of "processors" used to parameterise the block-structured
#: distributions; the paper sets it to the Tesla C1060's 240 scalar processors.
DEFAULT_P = 240

KEY_RANGE_BITS = 32
KEY_RANGE = 1 << KEY_RANGE_BITS


def _rng(seed: Optional[int]) -> np.random.Generator:
    """Mersenne-Twister generator, matching the paper's uniform source."""
    return np.random.Generator(np.random.MT19937(seed))


def uniform(n: int, seed: Optional[int] = None, p: int = DEFAULT_P) -> np.ndarray:
    """Uniformly distributed random keys in ``[0, 2^32 - 1]``."""
    _check_n(n)
    gen = _rng(seed)
    return gen.integers(0, KEY_RANGE, size=n, dtype=np.uint64)


def gaussian(n: int, seed: Optional[int] = None, p: int = DEFAULT_P) -> np.ndarray:
    """Gaussian-ish keys: the average of 4 uniform random values per key."""
    _check_n(n)
    gen = _rng(seed)
    samples = gen.integers(0, KEY_RANGE, size=(4, n), dtype=np.uint64)
    return (samples.sum(axis=0) // 4).astype(np.uint64)


def bucket_sorted(n: int, seed: Optional[int] = None, p: int = DEFAULT_P) -> np.ndarray:
    """The Bucket distribution of Helman–Bader–JáJá.

    The input is split into ``p`` blocks; the first ``n/p^2`` elements of every
    block are uniform in the first of ``p`` key sub-ranges, the next ``n/p^2``
    in the second sub-range, and so forth. The result looks locally random but
    globally pre-bucketised.
    """
    _check_n(n)
    if p <= 0:
        raise ValueError(f"p must be positive, got {p}")
    gen = _rng(seed)
    out = np.empty(n, dtype=np.uint64)
    positions = np.arange(n, dtype=np.int64)
    block = positions * p // n            # which of the p blocks
    within = positions - block * n // p   # index within the block (approximate
    # for non-divisible n; the shape of the distribution is unaffected)
    block_len = np.maximum(1, n // p)
    group = np.minimum((within * p) // np.maximum(block_len, 1), p - 1)
    sub_range = KEY_RANGE // p
    low = group.astype(np.uint64) * np.uint64(sub_range)
    out = low + gen.integers(0, max(sub_range, 1), size=n, dtype=np.uint64)
    return out


def staggered(n: int, seed: Optional[int] = None, p: int = DEFAULT_P) -> np.ndarray:
    """The Staggered distribution of Helman–Bader–JáJá.

    ``p`` blocks; a block with index ``i < p/2`` draws all of its elements from
    the narrow sub-range ``[(2i+1) * 2^31/p, (2i+2) * 2^31/p)`` (the upper
    half-interleave), the remaining blocks from the lower half. Adversarial for
    partitioners that assume uniformly spread keys.
    """
    _check_n(n)
    if p <= 0:
        raise ValueError(f"p must be positive, got {p}")
    gen = _rng(seed)
    positions = np.arange(n, dtype=np.int64)
    block = np.minimum(positions * p // n, p - 1)
    half_range = KEY_RANGE // 2
    sub = max(1, half_range // p)
    first_half = block < (p + 1) // 2
    # upper-half target sub-range for early blocks, lower half for late blocks
    base = np.where(
        first_half,
        half_range + (block.astype(np.int64) * 2 % p) * sub,
        ((block - (p + 1) // 2) * 2 % p) * sub,
    ).astype(np.uint64)
    return base + gen.integers(0, sub, size=n, dtype=np.uint64)


def deterministic_duplicates(n: int, seed: Optional[int] = None,
                             p: int = DEFAULT_P) -> np.ndarray:
    """The DeterministicDuplicates distribution: O(log n) distinct keys.

    The elements of the first ``p/2`` blocks are set to ``log n``, the elements
    of the next ``p/4`` blocks to ``log(n/2)``, and so forth.
    """
    _check_n(n)
    if p <= 0:
        raise ValueError(f"p must be positive, got {p}")
    out = np.empty(n, dtype=np.uint64)
    remaining_blocks = p
    start_block = 0
    level = 0
    logn = max(1, int(np.log2(max(n, 2))))
    while start_block < p:
        take = max(1, remaining_blocks // 2)
        value = max(0, logn - level)
        lo = start_block * n // p
        hi = min(n, (start_block + take) * n // p)
        if start_block + take >= p:
            hi = n
        out[lo:hi] = np.uint64(value)
        start_block += take
        remaining_blocks -= take
        level += 1
        if take == 1 and remaining_blocks <= 1:
            out[hi:] = np.uint64(max(0, logn - level))
            break
    return out


def sorted_keys(n: int, seed: Optional[int] = None, p: int = DEFAULT_P) -> np.ndarray:
    """An already sorted uniform input (the paper's worst case for sample sort)."""
    return np.sort(uniform(n, seed=seed, p=p))


def reverse_sorted(n: int, seed: Optional[int] = None, p: int = DEFAULT_P) -> np.ndarray:
    """A reverse-sorted uniform input (extra stress case, not in the paper)."""
    return sorted_keys(n, seed=seed, p=p)[::-1].copy()


def zero(n: int, seed: Optional[int] = None, p: int = DEFAULT_P) -> np.ndarray:
    """All keys equal — the zero-entropy extreme."""
    _check_n(n)
    return np.zeros(n, dtype=np.uint64)


def _check_n(n: int) -> None:
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")


@dataclass(frozen=True)
class Distribution:
    """A named input distribution."""

    name: str
    generator: Callable[..., np.ndarray]
    description: str

    def generate(self, n: int, seed: Optional[int] = None,
                 p: int = DEFAULT_P) -> np.ndarray:
        """Generate ``n`` raw 32-bit-range keys (as uint64)."""
        return self.generator(n, seed=seed, p=p)


#: Registry of the paper's distributions plus the extra stress cases.
DISTRIBUTIONS: dict[str, Distribution] = {
    "uniform": Distribution("uniform", uniform,
                            "uniform random keys in [0, 2^32)"),
    "gaussian": Distribution("gaussian", gaussian,
                             "average of 4 uniform values per key"),
    "bucket": Distribution("bucket", bucket_sorted,
                           "p-block bucketised keys (Helman-Bader-JaJa)"),
    "staggered": Distribution("staggered", staggered,
                              "p-block staggered keys (Helman-Bader-JaJa)"),
    "dduplicates": Distribution("dduplicates", deterministic_duplicates,
                                "deterministic duplicates: O(log n) distinct keys"),
    "sorted": Distribution("sorted", sorted_keys,
                           "already sorted uniform keys"),
    "reverse": Distribution("reverse", reverse_sorted,
                            "reverse-sorted uniform keys"),
    "zero": Distribution("zero", zero, "all keys equal"),
}

#: The six distributions shown in Figure 5, in the paper's order.
FIGURE5_DISTRIBUTIONS = ["uniform", "gaussian", "sorted", "staggered", "bucket",
                         "dduplicates"]


def get_distribution(name: str) -> Distribution:
    """Look up a distribution by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in DISTRIBUTIONS:
        raise KeyError(
            f"unknown distribution {name!r}; available: {sorted(DISTRIBUTIONS)}"
        )
    return DISTRIBUTIONS[key]


def generate(name: str, n: int, seed: Optional[int] = None,
             p: int = DEFAULT_P) -> np.ndarray:
    """Convenience: generate ``n`` keys from the named distribution."""
    return get_distribution(name).generate(n, seed=seed, p=p)


__all__ = [
    "DEFAULT_P",
    "KEY_RANGE",
    "KEY_RANGE_BITS",
    "Distribution",
    "DISTRIBUTIONS",
    "FIGURE5_DISTRIBUTIONS",
    "uniform",
    "gaussian",
    "bucket_sorted",
    "staggered",
    "deterministic_duplicates",
    "sorted_keys",
    "reverse_sorted",
    "zero",
    "get_distribution",
    "generate",
]
