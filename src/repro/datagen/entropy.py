"""Distribution profiling: entropy and skew statistics of a workload.

The paper's discussion of why radix sorts "become inefficient when the keys are
long or nonuniformly distributed" and why uniformity-assuming partitioners
(hybrid sort, bbsort) degrade on Bucket / Staggered / DeterministicDuplicates
inputs is fundamentally about two properties of the key sequence:

* its **entropy** (how many distinct keys, how concentrated the mass is), and
* its **spatial skew** relative to a uniform partition of the key range (how
  unbalanced the buckets of a uniformity-assuming partitioner become).

:func:`profile_keys` measures both on a concrete array; the analytic performance
model consumes the resulting :class:`DistributionProfile` so that the same
workload characterisation drives both the functional simulation and the
closed-form predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class DistributionProfile:
    """Summary statistics of a key array that affect sorter behaviour."""

    n: int
    distinct_keys: int
    #: Shannon entropy of the empirical key distribution, in bits.
    entropy_bits: float
    #: Entropy normalised by log2(n) (1.0 = all distinct, 0.0 = all equal).
    normalised_entropy: float
    #: Fraction of elements whose key is one of the most common ceil(log2 n) keys.
    duplicate_mass: float
    #: Max/mean bucket-size ratio if the key range were split into `p` uniform
    #: sub-ranges (what a uniformity-assuming partitioner would see).
    uniform_partition_skew: float
    #: Fraction of elements already in non-decreasing order relative to their
    #: predecessor (1.0 for sorted inputs).
    sortedness: float
    #: True when the key dtype needs 64-bit comparisons / radix passes.
    is_64bit: bool

    @property
    def is_low_entropy(self) -> bool:
        """Low-entropy in the paper's sense (DeterministicDuplicates-like)."""
        return self.normalised_entropy < 0.35

    @property
    def is_skewed(self) -> bool:
        """Skewed enough to hurt uniformity-assuming partitioners."""
        return self.uniform_partition_skew > 4.0


def shannon_entropy_bits(keys: np.ndarray) -> float:
    """Shannon entropy (bits) of the empirical distribution of ``keys``."""
    keys = np.asarray(keys)
    if keys.size == 0:
        return 0.0
    _, counts = np.unique(keys, return_counts=True)
    probabilities = counts / keys.size
    return float(-(probabilities * np.log2(probabilities)).sum())


def uniform_partition_skew(keys: np.ndarray, partitions: int = 2048) -> float:
    """Max/mean occupancy over ``partitions`` equal sub-ranges of the key range.

    This is exactly the imbalance hybrid sort / bbsort suffer: their first pass
    assigns element ``e`` to bucket ``floor(e / range * partitions)``.
    """
    keys = np.asarray(keys)
    if keys.size == 0:
        return 1.0
    as_float = keys.astype(np.float64)
    lo = float(as_float.min())
    hi = float(as_float.max())
    if hi <= lo:
        # every key identical: everything lands in one bucket
        return float(partitions)
    buckets = np.minimum(
        ((as_float - lo) / (hi - lo) * partitions).astype(np.int64), partitions - 1
    )
    counts = np.bincount(buckets, minlength=partitions)
    mean = keys.size / partitions
    return float(counts.max() / mean)


def sortedness(keys: np.ndarray) -> float:
    """Fraction of adjacent pairs already in non-decreasing order."""
    keys = np.asarray(keys)
    if keys.size <= 1:
        return 1.0
    return float(np.count_nonzero(keys[1:] >= keys[:-1]) / (keys.size - 1))


def profile_keys(keys: np.ndarray, partitions: int = 2048,
                 sample_limit: Optional[int] = 1 << 20,
                 seed: int = 0) -> DistributionProfile:
    """Measure the :class:`DistributionProfile` of a key array.

    For very large arrays a random subsample of ``sample_limit`` elements is
    profiled instead (the statistics of interest are stable under sampling);
    pass ``sample_limit=None`` to force exact profiling.
    """
    keys = np.asarray(keys)
    n = int(keys.size)
    if n == 0:
        return DistributionProfile(
            n=0, distinct_keys=0, entropy_bits=0.0, normalised_entropy=0.0,
            duplicate_mass=0.0, uniform_partition_skew=1.0, sortedness=1.0,
            is_64bit=keys.dtype.itemsize >= 8,
        )
    sample = keys
    if sample_limit is not None and n > sample_limit:
        gen = np.random.Generator(np.random.MT19937(seed))
        sample = keys[gen.integers(0, n, size=sample_limit)]

    uniques, counts = np.unique(sample, return_counts=True)
    probabilities = counts / sample.size
    entropy = float(-(probabilities * np.log2(probabilities)).sum())
    log2n = np.log2(max(sample.size, 2))
    top = int(np.ceil(np.log2(max(n, 2))))
    top_mass = float(np.sort(counts)[::-1][:top].sum() / sample.size)

    return DistributionProfile(
        n=n,
        distinct_keys=int(uniques.size),
        entropy_bits=entropy,
        normalised_entropy=float(min(1.0, entropy / log2n)),
        duplicate_mass=top_mass,
        uniform_partition_skew=uniform_partition_skew(sample, partitions),
        sortedness=sortedness(keys if n <= (sample_limit or n) else sample),
        is_64bit=keys.dtype.itemsize >= 8,
    )


__all__ = [
    "DistributionProfile",
    "shannon_entropy_bits",
    "uniform_partition_skew",
    "sortedness",
    "profile_keys",
]
