"""Key types used in the paper's experiments.

The experimental study (§6) reports results for four input types:

* 32-bit integer keys (``uint32``),
* 32-bit floating point keys (``float32`` — the only type hybrid sort accepts),
* 64-bit integer keys (``uint64`` — the type where radix sort loses),
* key-value pairs where both key and value are 32-bit integers (the only type
  Thrust merge sort handles, hence the Figure 3 comparison).

:func:`make_input` converts the raw ``[0, 2^32)`` keys produced by
:mod:`repro.datagen.distributions` into any of these, optionally attaching a
payload, and returns a :class:`SortInput` the harness and sorters consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .distributions import KEY_RANGE, generate


@dataclass(frozen=True)
class KeyType:
    """Description of one key type from the paper."""

    name: str
    dtype: np.dtype
    key_bits: int
    comparison_only: bool
    description: str

    @property
    def key_bytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize)


KEY_TYPES: dict[str, KeyType] = {
    "uint32": KeyType("uint32", np.dtype(np.uint32), 32, False,
                      "32-bit unsigned integer keys"),
    "uint64": KeyType("uint64", np.dtype(np.uint64), 64, False,
                      "64-bit unsigned integer keys"),
    "float32": KeyType("float32", np.dtype(np.float32), 32, True,
                       "32-bit floating point keys"),
}


def get_key_type(name: str) -> KeyType:
    key = name.strip().lower()
    if key not in KEY_TYPES:
        raise KeyError(f"unknown key type {name!r}; available: {sorted(KEY_TYPES)}")
    return KEY_TYPES[key]


@dataclass
class SortInput:
    """A generated sorting workload."""

    keys: np.ndarray
    values: Optional[np.ndarray]
    key_type: KeyType
    distribution: str
    seed: Optional[int]

    @property
    def n(self) -> int:
        return int(self.keys.size)

    @property
    def has_values(self) -> bool:
        return self.values is not None

    @property
    def record_bytes(self) -> int:
        """Bytes per record (key plus optional payload)."""
        total = self.key_type.key_bytes
        if self.values is not None:
            total += int(self.values.dtype.itemsize)
        return total

    def copy(self) -> "SortInput":
        return SortInput(
            keys=self.keys.copy(),
            values=None if self.values is None else self.values.copy(),
            key_type=self.key_type,
            distribution=self.distribution,
            seed=self.seed,
        )

    def expected_keys(self) -> np.ndarray:
        """The correctly sorted key sequence (NumPy oracle)."""
        return np.sort(self.keys)


def raw_to_dtype(raw: np.ndarray, key_type: KeyType,
                 seed: Optional[int] = None) -> np.ndarray:
    """Convert raw 32-bit-range keys into the requested key type.

    * ``uint32``: direct cast.
    * ``float32``: scaled into [0, 1) so every distinct raw key stays distinct
      enough at float precision for the distributions used here.
    * ``uint64``: the raw key forms the *high* 32 bits and an independent
      uniform draw fills the low 32 bits, so the distribution shape over the
      key space is preserved while keys genuinely require 64-bit comparisons
      (this is what makes the radix baseline pay for the longer key).
    """
    raw = np.asarray(raw, dtype=np.uint64)
    if key_type.name == "uint32":
        return raw.astype(np.uint32)
    if key_type.name == "float32":
        return (raw.astype(np.float64) / float(KEY_RANGE)).astype(np.float32)
    if key_type.name == "uint64":
        gen = np.random.Generator(np.random.MT19937(seed))
        low = gen.integers(0, KEY_RANGE, size=raw.size, dtype=np.uint64)
        return (raw << np.uint64(32)) | low
    raise KeyError(f"unhandled key type {key_type.name!r}")


def make_input(
    distribution: str,
    n: int,
    key_type: str = "uint32",
    with_values: bool = False,
    seed: Optional[int] = None,
    p: Optional[int] = None,
) -> SortInput:
    """Generate a complete sorting workload.

    ``with_values=True`` attaches a 32-bit payload that is simply the original
    index of every record, which also lets the validation module check that
    keys and values stayed paired through the sort.
    """
    kt = get_key_type(key_type)
    kwargs = {} if p is None else {"p": p}
    raw = generate(distribution, n, seed=seed, **kwargs)
    keys = raw_to_dtype(raw, kt, seed=None if seed is None else seed + 1)
    values = None
    if with_values:
        values = np.arange(n, dtype=np.uint32)
    return SortInput(keys=keys, values=values, key_type=kt,
                     distribution=distribution, seed=seed)


__all__ = [
    "KeyType",
    "KEY_TYPES",
    "get_key_type",
    "SortInput",
    "raw_to_dtype",
    "make_input",
]
