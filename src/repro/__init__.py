"""repro — reproduction of "GPU Sample Sort" (Leischner, Osipov, Sanders, 2010).

The package implements the paper's k-way sample sort and every system it is
evaluated against on a SIMT GPU simulator, plus an analytic performance model
calibrated once against the paper's reported rates so that every figure of the
evaluation section can be regenerated without CUDA hardware.

Layer map (see DESIGN.md for the full inventory):

* :mod:`repro.gpu` — the SIMT GPU simulator substrate (devices, memory,
  warps, kernels, counters, timing).
* :mod:`repro.primitives` — scan, reduce, compaction, sorting networks,
  histograms, sampling RNG.
* :mod:`repro.core` — the paper's contribution: :class:`SampleSorter` and its
  four-phase distribution pipeline.
* :mod:`repro.baselines` — Thrust merge sort, CUDPP/Thrust radix sort, GPU
  quicksort, hybrid sort and bbsort.
* :mod:`repro.datagen` — the Helman-Bader-JaJa distribution suite and key types.
* :mod:`repro.perfmodel` — closed-form operation counts and the calibrated
  analytic time model.
* :mod:`repro.harness` — the paper's figures as runnable experiments.
* :mod:`repro.service` — the async sharded sort service (request queue,
  micro-batching scheduler, device shards, per-request telemetry).
* :mod:`repro.cluster` — the replicated sort cluster (front-end load
  balancer, content-addressed result cache, multi-tenant fair scheduling).
* :mod:`repro.analysis` — output validation and comparison metrics.

Quick start::

    import numpy as np
    from repro import SampleSorter, TESLA_C1060

    keys = np.random.default_rng(0).integers(0, 2**32, 1 << 18, dtype=np.uint64)
    result = SampleSorter(TESLA_C1060).sort(keys.astype(np.uint32))
    print(result.sorting_rate, "elements/us predicted on", result.device.name)
"""

from .analysis import validate_result
from .baselines import (
    BbSorter,
    GpuQuicksortSorter,
    HybridSorter,
    RadixSorter,
    ThrustMergeSorter,
    available_sorters,
    make_sorter,
)
from .core import (
    GpuSorter,
    SampleSortConfig,
    SampleSorter,
    SortResult,
    sample_sort,
    serial_sample_sort,
)
from .datagen import make_input
from .gpu import GTX_285, TESLA_C1060, DeviceSpec, get_device
from .harness import EXPERIMENTS, get_experiment, run_experiment
from .service import ServiceConfig, SortService
from .cluster import ClusterConfig, SortCluster, TenantSpec
from .perfmodel import AnalyticTimeModel, rate_series

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "validate_result",
    "BbSorter",
    "GpuQuicksortSorter",
    "HybridSorter",
    "RadixSorter",
    "ThrustMergeSorter",
    "available_sorters",
    "make_sorter",
    "GpuSorter",
    "SampleSortConfig",
    "SampleSorter",
    "SortResult",
    "sample_sort",
    "serial_sample_sort",
    "make_input",
    "DeviceSpec",
    "TESLA_C1060",
    "GTX_285",
    "get_device",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
    "ServiceConfig",
    "SortService",
    "ClusterConfig",
    "SortCluster",
    "TenantSpec",
    "AnalyticTimeModel",
    "rate_series",
]
