"""Bounded request queue with admission control.

Requests enter the service through :class:`RequestQueue`. The queue is the
backpressure point: it holds at most ``capacity`` requests, and a request
larger than the admission limit is rejected outright — both rejections reuse
the simulator's existing error hierarchy (:class:`~repro.gpu.errors.SorterError`
subclasses) so callers handle them like any other sorter failure.

Batching compatibility: :meth:`~repro.core.sample_sort.SampleSorter.sort_many`
requires one key dtype (and one value dtype, all-or-nothing) per batch, so each
request carries a *group key* and the queue knows how to gather a same-group
run of requests for the micro-batcher.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..gpu.errors import SorterError, UnsupportedInputError


class QueueFullError(SorterError):
    """Raised when a request arrives at a queue that is at capacity.

    This is the service's backpressure signal: the caller should retry later
    (or shed load) rather than let an unbounded backlog build up.
    """


class OversizeRequestError(UnsupportedInputError):
    """Raised when a single request exceeds the service's admission limit."""


def _check_layout(array: np.ndarray, role: str) -> None:
    """Reject array layouts the engine's device-buffer copy cannot take.

    Broadcast (zero-stride) arrays alias one element many times and sliced
    views are non-contiguous; both would only surface as shape/size confusion
    deep inside the engine, so admission rejects them with the actual reason.
    """
    if array.size > 1 and 0 in array.strides:
        raise UnsupportedInputError(
            f"sort request {role} are a zero-stride (broadcast) view; "
            f"materialise the array (np.ascontiguousarray) before submitting"
        )
    if not array.flags.c_contiguous:
        raise UnsupportedInputError(
            f"sort request {role} are non-contiguous (strides "
            f"{array.strides}); submit a contiguous array "
            f"(np.ascontiguousarray) instead of a strided view"
        )


@dataclass
class SortRequest:
    """One sort request travelling through the service."""

    request_id: int
    keys: np.ndarray
    values: Optional[np.ndarray] = None
    #: Simulated arrival time in microseconds (service timeline).
    arrival_us: float = 0.0

    def __post_init__(self) -> None:
        self.keys = np.asarray(self.keys)
        if self.keys.ndim != 1:
            raise UnsupportedInputError(
                f"sort requests need one-dimensional keys, got shape "
                f"{self.keys.shape}"
            )
        if self.keys.dtype.kind not in "uif":
            # Admission is the last place to catch this: a bad dtype inside a
            # dispatched batch would otherwise fail mid-drain.
            raise UnsupportedInputError(
                f"sort requests need integer or float keys, got dtype "
                f"{self.keys.dtype}"
            )
        _check_layout(self.keys, "keys")
        if self.values is not None:
            self.values = np.asarray(self.values)
            if self.values.shape != self.keys.shape:
                raise UnsupportedInputError(
                    f"values shape {self.values.shape} does not match keys "
                    f"shape {self.keys.shape}"
                )
            _check_layout(self.values, "values")

    @property
    def n(self) -> int:
        return int(self.keys.size)

    @property
    def group(self) -> tuple:
        """Batching-compatibility key: requests in one micro-batch share it."""
        value_dtype = None if self.values is None else str(self.values.dtype)
        return (str(self.keys.dtype), value_dtype)


def companion_verdict(head_group: tuple, elements: int, request: SortRequest,
                      max_elements: int,
                      companion_limit: Optional[int]) -> str:
    """The single batching-eligibility rule: ``"join"``, ``"skip"`` or
    ``"close"``.

    Shared by the queue's gatherer and the service's wait-or-dispatch
    decision so the two can never disagree about which requests a batch of
    ``elements`` elements (headed by ``head_group``) could still absorb:
    a different dtype group or an over-``companion_limit`` request is skipped
    (it keeps its place for a later batch / the sharded path), while a
    same-group request that busts the element budget closes the batch.
    """
    if request.group != head_group:
        return "skip"
    if companion_limit is not None and request.n > companion_limit:
        return "skip"
    if elements + request.n > max_elements:
        return "close"
    return "join"


@dataclass
class RequestQueue:
    """FIFO queue of admitted requests, bounded by ``capacity``."""

    capacity: int
    _items: deque = field(default_factory=deque)
    #: High-water mark of the queue depth, for service telemetry.
    depth_peak: int = 0
    #: Running total of queued elements — O(1) load reads for the balancer.
    _elements: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {self.capacity}")

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        """Iterate the queued requests in FIFO order (load inspection)."""
        return iter(self._items)

    @property
    def elements(self) -> int:
        """Total elements queued right now (outstanding-work load signal)."""
        return self._elements

    def push(self, request: SortRequest) -> None:
        if len(self._items) >= self.capacity:
            raise QueueFullError(
                f"request queue is full ({self.capacity} requests); "
                f"retry after the backlog drains"
            )
        self._items.append(request)
        self._elements += request.n
        self.depth_peak = max(self.depth_peak, len(self._items))

    def peek(self) -> SortRequest:
        if not self._items:
            raise IndexError("peek on an empty request queue")
        return self._items[0]

    def gather_group(self, max_requests: int, max_elements: int,
                     companion_limit: Optional[int] = None) -> list[SortRequest]:
        """The head request plus later same-group requests, within budgets.

        See :meth:`gather_group_state`; this drops the ``closed`` flag.
        """
        return self.gather_group_state(max_requests, max_elements,
                                       companion_limit)[0]

    def gather_group_state(
        self, max_requests: int, max_elements: int,
        companion_limit: Optional[int] = None,
    ) -> tuple[list[SortRequest], bool]:
        """``(batch candidate, closed)`` for the head request's group.

        Scans in FIFO order and *skips* requests of other groups (they keep
        their place for a later batch), so one incompatible request does not
        stall coalescing behind it. Requests larger than ``companion_limit``
        are also skipped — the service routes those through the sharded path
        once they reach the head, so they must not ride along in somebody
        else's batch. The gathered requests are not removed; call
        :meth:`remove` once the batch is actually dispatched. The head request
        is always included, even if it alone exceeds ``max_elements`` —
        admission control, not batching, bounds single requests.

        ``closed`` reports that the scan ended at a budget boundary (request
        cap, or a same-group request that busts the element budget) rather
        than by running out of queued requests: a closed candidate can never
        grow, so a scheduler should dispatch it instead of waiting for
        companions.
        """
        if not self._items:
            return [], False
        head = self._items[0]
        gathered = [head]
        elements = head.n
        closed = False
        for request in list(self._items)[1:]:
            if len(gathered) >= max_requests:
                closed = True
                break
            verdict = companion_verdict(head.group, elements, request,
                                        max_elements, companion_limit)
            if verdict == "skip":
                continue
            if verdict == "close":
                closed = True
                break
            gathered.append(request)
            elements += request.n
        return gathered, closed

    def remove(self, requests: list[SortRequest]) -> None:
        """Remove dispatched requests (by identity) from the queue."""
        dispatched = {id(r) for r in requests}
        kept = deque()
        for request in self._items:
            if id(request) in dispatched:
                self._elements -= request.n
            else:
                kept.append(request)
        self._items = kept

    def pop_all(self) -> list[SortRequest]:
        """Remove and return every queued request (drain handoff)."""
        items = list(self._items)
        self._items.clear()
        self._elements = 0
        return items


__all__ = ["QueueFullError", "OversizeRequestError", "SortRequest",
           "RequestQueue", "companion_verdict"]
