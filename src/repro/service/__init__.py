"""Async sharded sort service built on the batched distribution engine.

The paper amortises kernel-launch overhead by processing many buckets per
launch; :meth:`~repro.core.sample_sort.SampleSorter.sort_many` extends that to
many *requests* per launch. This subpackage turns the batched sorter into a
serving system — the ROADMAP's scale-out direction:

* :mod:`repro.service.queue` — bounded request queue with admission control
  (backpressure when full, oversize rejection),
* :mod:`repro.service.batcher` — micro-batching scheduler that coalesces
  compatible requests (same key/value dtype) under a latency/size budget,
* :mod:`repro.service.shards` — a pool of simulated devices, one persistent
  stream per shard, plus splitter-based scatter / k-way merge of a single
  oversized request across shards,
* :mod:`repro.service.service` — :class:`SortService`, the event loop tying
  them together, with per-request attribution and service-level telemetry.

Quick start::

    from repro.service import ServiceConfig, SortService

    service = SortService(ServiceConfig(num_shards=2))
    ids = [service.submit(keys) for keys in requests]
    results = service.drain()
    print(service.stats()["latency_us"])
"""

from .batcher import BatchPolicy, MicroBatch, MicroBatcher
from .queue import OversizeRequestError, QueueFullError, RequestQueue, SortRequest
from .service import ServiceConfig, ServiceResult, SortService
from .shards import DeviceShard, ShardPool, merge_shard_outputs

__all__ = [
    "BatchPolicy",
    "MicroBatch",
    "MicroBatcher",
    "QueueFullError",
    "OversizeRequestError",
    "RequestQueue",
    "SortRequest",
    "ServiceConfig",
    "ServiceResult",
    "SortService",
    "DeviceShard",
    "ShardPool",
    "merge_shard_outputs",
]
