"""Device shards: a pool of simulated GPUs serving batches and split requests.

Each :class:`DeviceShard` owns one :class:`~repro.core.sample_sort.SampleSorter`
and one persistent :class:`~repro.gpu.stream.DeviceStream`; every batch the
shard serves appends its launches to that stream (stream reuse) and advances
the stream's busy horizon, which is what the service's multi-device scheduling
reads.

A single request too large for one micro-batch can be *sharded* across the
whole pool:

1. **splitter-based scatter** — run exactly the level-0 distribution pass a
   solo sort would run (same sampling seed, same splitters), producing the
   2k level-1 buckets;
2. **subtree assignment** — split the bucket list into one contiguous,
   element-balanced group per shard;
3. **shard sort** — each shard runs the distribution engine over its group of
   buckets. The sampling seed is a pure function of ``(depth, start)``, so the
   shard reproduces, bucket for bucket, the recursion the solo sort would have
   performed on those subtrees — the merged output is byte-identical to a solo
   sort, key-value tie permutations included;
4. **k-way merge** — the shard outputs are ordered, disjoint key ranges
   (bucket boundaries are splitter boundaries), so the merge gathers them in
   bucket order while checking the range boundaries really are ordered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from ..core.config import SampleSortConfig
from ..core.engine import DistributionEngine, SegmentDescriptor
from ..core.sample_sort import SampleSorter
from ..gpu.device import DeviceSpec, TESLA_C1060
from ..gpu.kernel import KernelLauncher
from ..gpu.stream import DeviceStream


class _StreamSnapshot:
    """Undo point for persistent streams: a failed dispatch is retried by the
    service, so its partial trace records and busy time must not survive —
    otherwise every retry double-books launches and shard availability."""

    def __init__(self, streams: list[DeviceStream]):
        self._saved = [
            (s, len(s.trace.records), s.busy_until_us, s.operations)
            for s in streams
        ]

    def rollback(self) -> None:
        for stream, cursor, busy_until_us, operations in self._saved:
            del stream.trace.records[cursor:]
            stream.busy_until_us = busy_until_us
            stream.operations = operations


@dataclass
class DeviceShard:
    """One simulated device with a persistent sorter and stream."""

    shard_id: int
    device: DeviceSpec
    config: SampleSortConfig
    sorter: SampleSorter = field(init=False)
    stream: DeviceStream = field(init=False)

    def __post_init__(self) -> None:
        self.sorter = SampleSorter(device=self.device, config=self.config)
        self.stream = DeviceStream(name=f"shard{self.shard_id}")

    def run_batch(self, batch_keys, batch_values, now_us: float):
        """Serve one micro-batch on this shard's stream.

        Returns ``(results, start_us, end_us, wall_s)``: the per-request
        :class:`~repro.core.base.SortResult` list, the simulated execution
        window on this shard's stream, and the host wall time the functional
        simulation cost.
        """
        snapshot = _StreamSnapshot([self.stream])
        try:
            wall_start = time.perf_counter()
            results = self.sorter.sort_many(
                batch_keys, batch_values, trace=self.stream.trace
            )
            wall_s = time.perf_counter() - wall_start
            predicted_us = results[0].stats["predicted_us"]
            start_us, end_us = self.stream.enqueue(predicted_us, now_us)
        except Exception:
            snapshot.rollback()
            raise
        return results, start_us, end_us, wall_s


class ShardPool:
    """A fixed pool of identical device shards plus a scatter stream."""

    def __init__(self, num_shards: int, device: DeviceSpec = TESLA_C1060,
                 config: Optional[SampleSortConfig] = None):
        if num_shards < 1:
            raise ValueError(f"a shard pool needs >= 1 shard, got {num_shards}")
        config = config if config is not None else SampleSortConfig.paper()
        self.device = device
        self.config = config
        self.shards = [
            DeviceShard(shard_id=i, device=device, config=config)
            for i in range(num_shards)
        ]
        #: Stream for the level-0 scatter pass of sharded requests (the
        #: coordinating device's work before the pool fans out).
        self.scatter_stream = DeviceStream(name="scatter")

    def __len__(self) -> int:
        return len(self.shards)

    def least_loaded(self, now_us: float) -> DeviceShard:
        """The shard that could start new work earliest."""
        return min(self.shards, key=lambda s: (s.stream.available_at(now_us),
                                               s.shard_id))

    def all_available_at(self, now_us: float) -> float:
        """Earliest time every shard is free — the barrier a sharded request needs."""
        return max(s.stream.available_at(now_us) for s in self.shards)


def plan_shard_assignment(
    children: list[SegmentDescriptor], num_shards: int
) -> list[list[SegmentDescriptor]]:
    """Split level-1 buckets into contiguous, element-balanced shard groups.

    Buckets stay in start order (so each group is one contiguous range of the
    output) and groups are cut greedily at the running-total boundaries of
    ``total / num_shards`` elements. Returns only non-empty groups, so fewer
    buckets than shards simply leaves some shards out of this request.
    """
    total = sum(c.size for c in children)
    if total == 0 or not children:
        return [children] if children else []
    target = total / num_shards
    groups: list[list[SegmentDescriptor]] = []
    current: list[SegmentDescriptor] = []
    consumed = 0
    for child in children:
        current.append(child)
        consumed += child.size
        if consumed >= target * (len(groups) + 1) and len(groups) < num_shards - 1:
            groups.append(current)
            current = []
    if current:
        groups.append(current)
    return groups


def merge_shard_outputs(
    n: int,
    groups: list[list[SegmentDescriptor]],
    shard_keys: list[np.ndarray],
    shard_values: list[Optional[np.ndarray]],
    out_keys: np.ndarray,
    out_values: Optional[np.ndarray],
) -> None:
    """K-way merge of the shard outputs into the final arrays.

    Each shard produced one sorted, contiguous range of the output (as a
    group-local slice of length ``hi - lo``); because the scatter was
    splitter-based, the ranges are disjoint and ordered, so the merge is a
    gather in group order — verified by checking that every group covers
    exactly the span between its first and last bucket and that the spans
    tile ``[0, n)`` without gaps.
    """
    cursor = 0
    for group, keys, values in zip(groups, shard_keys, shard_values):
        lo = group[0].start
        hi = group[-1].start + group[-1].size
        if lo != cursor:
            raise AssertionError(
                f"shard outputs do not tile the result: expected range to "
                f"start at {cursor}, got {lo}"
            )
        if sum(c.size for c in group) != hi - lo:
            raise AssertionError("shard group is not contiguous")
        if keys.size != hi - lo:
            raise AssertionError(
                f"shard output of {keys.size} elements does not match its "
                f"group span of {hi - lo}"
            )
        out_keys[lo:hi] = keys
        if out_values is not None and values is not None:
            out_values[lo:hi] = values
        cursor = hi
    if cursor != n:
        raise AssertionError(
            f"shard outputs cover [0, {cursor}) but the request has {n} elements"
        )


def run_sharded(pool: ShardPool, keys: np.ndarray,
                values: Optional[np.ndarray], start_us: float) -> dict:
    """Scatter one oversized request across the pool, sort, merge.

    ``start_us`` is the simulated time the request gets the whole pool (the
    service waits for every shard: the scatter output feeds all of them).
    Returns a dict with the merged ``keys`` / ``values``, the simulated
    ``completion_us`` (scatter + slowest shard, shards run concurrently), the
    total-work attribution (``predicted_us`` = scatter + *sum* of shards,
    ``kernel_launches``, ``launches_by_phase``) and per-shard details.

    On failure every stream the run touched is rolled back to its pre-call
    state, so a retry does not double-book launches or shard busy time.
    """
    snapshot = _StreamSnapshot(
        [pool.scatter_stream] + [shard.stream for shard in pool.shards]
    )
    try:
        return _run_sharded_impl(pool, keys, values, start_us)
    except Exception:
        snapshot.rollback()
        raise


def _run_sharded_impl(pool: ShardPool, keys: np.ndarray,
                      values: Optional[np.ndarray], start_us: float) -> dict:
    n = int(keys.size)
    sorter = pool.shards[0].sorter
    config = sorter.effective_config(keys, values)
    engine = DistributionEngine(pool.device, config)
    root = SegmentDescriptor(start=0, size=n, buffer="primary", depth=0)
    if engine.is_leaf(root):
        raise ValueError(
            f"request of {n} elements would not be distributed at all; "
            f"sharding it buys nothing — dispatch it as a plain batch instead"
        )

    wall_start = time.perf_counter()

    # 1. Splitter-based scatter: exactly the solo sort's level-0 pass.
    scatter_trace_start = len(pool.scatter_stream.trace)
    launcher = KernelLauncher(pool.device, trace=pool.scatter_stream.trace)
    primary_keys = launcher.gmem.from_host(keys, name="keys_primary")
    aux_keys = launcher.gmem.alloc(n, keys.dtype, name="keys_aux")
    primary_values = aux_values = None
    if values is not None:
        primary_values = launcher.gmem.from_host(values, name="values_primary")
        aux_values = launcher.gmem.alloc(n, values.dtype, name="values_aux")
    children, level_info = engine.run_single_level(
        launcher, [root], primary_keys, primary_values, aux_keys, aux_values
    )
    scatter_slice = pool.scatter_stream.trace.slice_from(scatter_trace_start)
    scatter_us = scatter_slice.total_time_us
    scattered_keys = aux_keys.to_host()
    scattered_values = None if aux_values is None else aux_values.to_host()

    # 2. Contiguous, balanced subtree groups — one per shard.
    groups = plan_shard_assignment(children, len(pool))
    scatter_start_us, fan_out_us = pool.scatter_stream.enqueue(
        scatter_us, start_us
    )

    # 3. Each shard sorts its subtrees; seeds depend only on (depth, start),
    #    so every subtree recursion matches the solo sort's byte for byte.
    out_keys = np.empty(n, dtype=keys.dtype)
    out_values = None if values is None else np.empty(n, dtype=values.dtype)
    shard_keys: list[np.ndarray] = []
    shard_values: list[Optional[np.ndarray]] = []
    shard_details: list[dict] = []
    launches = scatter_slice.kernel_count
    launches_by_phase = dict(scatter_slice.launches_by_phase())
    total_work_us = scatter_us
    completion_us = fan_out_us
    for group, shard in zip(groups, pool.shards):
        # The shard only needs its group's span [lo, hi). Descriptors are
        # rebased to span-local coordinates; shifting `base` by the same
        # amount keeps the sampling seed a function of the *absolute* offset,
        # so the shard's recursion still matches the solo sort's.
        lo = group[0].start
        hi = group[-1].start + group[-1].size
        roots = [replace(c, start=c.start - lo, base=c.base - lo)
                 for c in group]
        trace_start = len(shard.stream.trace)
        shard_launcher = KernelLauncher(shard.device, trace=shard.stream.trace)
        s_primary = shard_launcher.gmem.alloc(hi - lo, keys.dtype,
                                              name="keys_primary")
        s_aux = shard_launcher.gmem.from_host(scattered_keys[lo:hi],
                                              name="keys_aux")
        s_primary_values = s_aux_values = None
        if scattered_values is not None:
            s_primary_values = shard_launcher.gmem.alloc(
                hi - lo, values.dtype, name="values_primary"
            )
            s_aux_values = shard_launcher.gmem.from_host(
                scattered_values[lo:hi], name="values_aux"
            )
        stats = engine.run(
            shard_launcher, s_primary, s_primary_values, s_aux, s_aux_values,
            roots=roots,
        )
        shard_slice = shard.stream.trace.slice_from(trace_start)
        shard_us = stats["predicted_us"]
        _, end_us = shard.stream.enqueue(shard_us, fan_out_us)
        completion_us = max(completion_us, end_us)
        total_work_us += shard_us
        launches += shard_slice.kernel_count
        for phase, count in shard_slice.launches_by_phase().items():
            launches_by_phase[phase] = launches_by_phase.get(phase, 0) + count
        shard_keys.append(s_primary.to_host())
        shard_values.append(
            None if s_primary_values is None else s_primary_values.to_host()
        )
        shard_details.append({
            "shard_id": shard.shard_id,
            "elements": sum(c.size for c in group),
            "buckets": len(group),
            "predicted_us": shard_us,
            "kernel_launches": shard_slice.kernel_count,
        })

    # 4. K-way merge of the ordered, disjoint shard ranges.
    merge_shard_outputs(n, groups, shard_keys, shard_values, out_keys, out_values)
    wall_s = time.perf_counter() - wall_start

    return {
        "keys": out_keys,
        "values": out_values,
        "start_us": scatter_start_us,
        "completion_us": completion_us,
        "scatter_us": scatter_us,
        "critical_path_us": completion_us - scatter_start_us,
        "predicted_us": total_work_us,
        "kernel_launches": launches,
        "launches_by_phase": launches_by_phase,
        "shards": shard_details,
        "scatter_utilisation": level_info.get("fused_utilisation"),
        "wall_s": wall_s,
    }


__all__ = [
    "DeviceShard",
    "ShardPool",
    "plan_shard_assignment",
    "merge_shard_outputs",
    "run_sharded",
]
