"""Device shards: a pool of simulated GPUs serving batches and split requests.

Each :class:`DeviceShard` owns one :class:`~repro.core.sample_sort.SampleSorter`
and one persistent :class:`~repro.gpu.stream.DeviceStream`; every batch the
shard serves appends its launches to that stream (stream reuse) and advances
the stream's busy horizon, which is what the service's multi-device scheduling
reads.

Pools may be **heterogeneous**: each shard can wrap a different
:class:`~repro.gpu.device.DeviceSpec` (the paper's Tesla C1060 / GTX 285
pair), as long as every device shares one *functional fingerprint* — the
geometry fields that influence output bytes. Clock and bandwidth may differ
freely; they only move time. Scheduling then happens in predicted
microseconds via the shared :class:`~repro.perfmodel.costmodel.DeviceCostModel`:
:meth:`ShardPool.least_loaded` ranks shards by predicted *completion* time
(a free GTX 285 beats a free C1060), and :func:`plan_shard_assignment` splits
an oversized request proportionally to predicted device throughput so every
shard finishes together.

A single request too large for one micro-batch can be *sharded* across the
whole pool:

1. **splitter-based scatter** — run exactly the level-0 distribution pass a
   solo sort would run (same sampling seed, same splitters), producing the
   2k level-1 buckets;
2. **subtree assignment** — split the bucket list into one contiguous,
   element-balanced group per shard;
3. **shard sort** — each shard runs the distribution engine over its group of
   buckets. The sampling seed is a pure function of ``(depth, start)``, so the
   shard reproduces, bucket for bucket, the recursion the solo sort would have
   performed on those subtrees — the merged output is byte-identical to a solo
   sort, key-value tie permutations included;
4. **k-way merge** — the shard outputs are ordered, disjoint key ranges
   (bucket boundaries are splitter boundaries), so the merge gathers them in
   bucket order while checking the range boundaries really are ordered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

from ..core.config import SampleSortConfig
from ..core.engine import DistributionEngine, SegmentDescriptor
from ..core.launch_plan import merge_utilization
from ..core.sample_sort import SampleSorter
from ..gpu.device import DeviceSpec, TESLA_C1060
from ..gpu.errors import DeviceConfigError
from ..gpu.kernel import KernelLauncher
from ..gpu.stream import DeviceStream
from ..perfmodel.calibration import CalibrationLedger
from ..perfmodel.costmodel import (
    AnalyticCostModel,
    DeviceCostModel,
    assignment_weights,
    pool_parallel_us,
)


class _StreamSnapshot:
    """Undo point for persistent streams: a failed dispatch is retried by the
    service, so its partial trace records and busy time must not survive —
    otherwise every retry double-books launches and shard availability."""

    def __init__(self, streams: list[DeviceStream]):
        self._saved = [
            (s, len(s.trace.records), len(s.trace.slot_records),
             s.busy_until_us, s.operations)
            for s in streams
        ]

    def rollback(self) -> None:
        for stream, cursor, slot_cursor, busy_until_us, operations in \
                self._saved:
            del stream.trace.records[cursor:]
            del stream.trace.slot_records[slot_cursor:]
            stream.busy_until_us = busy_until_us
            stream.operations = operations


def _label_launch_lanes(tracer, root, shard_id: int) -> None:
    """Prefix launch-span lanes with the serving shard.

    Engine runs know their slots but not which shard they ran on; without the
    prefix, launch spans of different shards in one replica would collapse
    onto the same ``slot N`` timeline lane in the Perfetto export.
    """
    for span in tracer.subtree(root):
        if span.layer == "launch":
            span.attributes["lane"] = (
                f"shard {shard_id} slot {span.attributes.get('slot', 0)}"
            )


@dataclass
class DeviceShard:
    """One simulated device with a persistent sorter and stream."""

    shard_id: int
    device: DeviceSpec
    config: SampleSortConfig
    sorter: SampleSorter = field(init=False)
    stream: DeviceStream = field(init=False)
    #: Cost-model prediction of every operation dispatched to this shard, in
    #: us — compared against the stream's simulated time in ``stats()`` as
    #: the per-device "model vs simulated" accuracy check.
    model_us: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        self.sorter = SampleSorter(device=self.device, config=self.config)
        self.stream = DeviceStream(name=f"shard{self.shard_id}")

    def run_batch(self, batch_keys, batch_values, now_us: float, tracer=None):
        """Serve one micro-batch on this shard's stream.

        Returns ``(results, start_us, end_us, wall_s)``: the per-request
        :class:`~repro.core.base.SortResult` list, the simulated execution
        window on this shard's stream, and the host wall time the functional
        simulation cost. With a :class:`repro.obs.Tracer`, the engine's span
        tree (run-local clock) is rebased onto the stream window and its
        launch spans are labelled with this shard's slot lanes; the root id
        stays in ``results[0].stats["trace_root"]`` for the service to adopt.
        """
        snapshot = _StreamSnapshot([self.stream])
        try:
            wall_start = time.perf_counter()
            results = self.sorter.sort_many(
                batch_keys, batch_values, trace=self.stream.trace,
                tracer=tracer,
            )
            wall_s = time.perf_counter() - wall_start
            # The stream is busy for the *packed* makespan (slot-scheduled
            # launches overlap), not the serialized launch total; the
            # serialized total stays in the stats as the work attribution.
            predicted_us = results[0].stats["predicted_us"]
            duration_us = results[0].stats.get("makespan_us", predicted_us)
            start_us, end_us = self.stream.enqueue(duration_us, now_us)
            if tracer is not None and "trace_root" in results[0].stats:
                tracer.rebase(results[0].stats["trace_root"], start_us)
                _label_launch_lanes(tracer, results[0].stats["trace_root"],
                                    self.shard_id)
        except Exception:
            snapshot.rollback()
            raise
        return results, start_us, end_us, wall_s


class ShardPool:
    """A fixed pool of device shards (possibly mixed) plus a scatter stream.

    Homogeneous construction (``ShardPool(4)``) is unchanged; a heterogeneous
    pool passes ``devices=[TESLA_C1060, GTX_285, ...]`` instead. Mixed pools
    must agree on :attr:`~repro.gpu.device.DeviceSpec.functional_fingerprint`
    — the geometry that influences output bytes — so any shard's result stays
    byte-identical to a solo sort; clock and bandwidth are free to differ,
    and the ``cost_model`` prices that difference for every scheduling
    decision.
    """

    def __init__(self, num_shards: Optional[int] = None,
                 device: DeviceSpec = TESLA_C1060,
                 config: Optional[SampleSortConfig] = None, *,
                 devices: Optional[Sequence[DeviceSpec]] = None,
                 cost_model: Optional[DeviceCostModel] = None):
        if devices is not None:
            devices = tuple(devices)
            if not devices:
                raise ValueError("a shard pool needs >= 1 device")
            if num_shards is not None and num_shards != len(devices):
                raise ValueError(
                    f"num_shards={num_shards} contradicts the explicit device "
                    f"list of {len(devices)}"
                )
        else:
            if num_shards is None:
                raise ValueError("give a shard pool num_shards or devices")
            if num_shards < 1:
                raise ValueError(
                    f"a shard pool needs >= 1 shard, got {num_shards}"
                )
            devices = (device,) * num_shards
        fingerprints = {d.functional_fingerprint for d in devices}
        if len(fingerprints) > 1:
            raise DeviceConfigError(
                f"mixed pool devices must share one functional fingerprint "
                f"(execution geometry) so results stay byte-identical to a "
                f"solo sort; got {sorted(d.name for d in devices)} with "
                f"{len(fingerprints)} distinct geometries"
            )
        config = config if config is not None else SampleSortConfig.paper()
        #: The coordinating/reference device: sharded requests run their
        #: level-0 scatter here, and admission-time engine decisions use it.
        self.device = devices[0]
        self.devices = devices
        self.config = config
        self.cost_model: DeviceCostModel = (
            cost_model if cost_model is not None else AnalyticCostModel()
        )
        self.shards = [
            DeviceShard(shard_id=i, device=shard_device, config=config)
            for i, shard_device in enumerate(devices)
        ]
        #: Stream for the level-0 scatter pass of sharded requests (the
        #: coordinating device's work before the pool fans out).
        self.scatter_stream = DeviceStream(name="scatter")

    def __len__(self) -> int:
        return len(self.shards)

    @property
    def heterogeneous(self) -> bool:
        """Whether the pool mixes device presets (by name)."""
        return len({d.name for d in self.devices}) > 1

    def predict_us(self, n: int, key_bytes: int, value_bytes: int,
                   device: DeviceSpec) -> float:
        """Cost-model prediction for one operation on one pool device."""
        return self.cost_model.predict_sort_us(n, key_bytes, value_bytes,
                                               device, self.config)

    def predict_request_us(self, n: int, key_bytes: int,
                           value_bytes: int = 0) -> float:
        """Predicted drain time of ``n`` records spread across the pool.

        The load signal a front end ranks replicas by: the whole pool acting
        as one device whose rate is the sum of the members' predicted rates.
        """
        return pool_parallel_us(self.cost_model, n, key_bytes, value_bytes,
                                self.devices, self.config)

    def calibration_ledger(self) -> CalibrationLedger:
        """Per-device model-vs-simulated ledger over everything served so far.

        Rebuilt from the shards' own committed state on every call rather
        than mutated incrementally: stream rollbacks (failed sharded runs)
        and the late commit of ``model_us`` bookings then keep calibration
        deterministic for free.
        """
        ledger = CalibrationLedger()
        for s in self.shards:
            ledger.record(s.device.name, s.model_us, s.stream.busy_us)
        return ledger

    def model_calibration(self, device_name: Optional[str] = None) -> float:
        """Observed simulated-us per model-us over everything served so far.

        The analytic model's *relative* device ranking is trustworthy (it is
        the Figure-6 model) but its absolute scale is calibrated for
        full-size workloads; at service batch sizes it can overshoot by a
        constant factor. Completion-time ranking adds a model prediction to
        a stream horizon measured in simulated microseconds, so the
        prediction is rescaled by this observed ratio — otherwise an
        overshooting model overweights device speed against queueing delay
        and parks requests behind a busy fast device. With ``device_name``
        the ratio is that device's own observed scale (different device
        classes drift differently), falling back to the pooled ratio while
        the device has no samples. Deterministic: a pure function of the
        work dispatched so far; 1.0 until there is history.
        """
        return self.calibration_ledger().ratio(device_name)

    def scatter_device(self, n: int, key_bytes: int,
                       value_bytes: int = 0) -> DeviceSpec:
        """The pool device predicted fastest for the level-0 scatter pass.

        Sharded requests used to run their scatter on ``devices[0]``
        regardless of the pool mix; on a heterogeneous pool that parks the
        serialized front of every sharded request on whatever device happened
        to be listed first. The cost model's relative ranking picks the
        fastest member instead (ties break on pool order, so homogeneous
        pools behave exactly as before). Output bytes cannot depend on the
        choice — the fingerprint check pins the execution geometry.
        """
        indexed = enumerate(self.devices)
        return min(
            indexed,
            key=lambda pair: (self.predict_us(n, key_bytes, value_bytes,
                                              pair[1]), pair[0]),
        )[1]

    def least_loaded(self, now_us: float, elements: Optional[int] = None,
                     key_bytes: int = 4, value_bytes: int = 0) -> DeviceShard:
        """The shard predicted to *finish* new work earliest.

        With ``elements`` the ranking key is predicted completion time —
        stream availability plus the (calibrated) cost-model prediction for
        this shard's device — so a faster device wins even from a slightly
        busier stream, but not from an arbitrarily busier one. Without it
        (legacy callers) the key degrades to bare availability. Ties always
        break on the stable shard id, so dispatch order is deterministic
        whatever the ranking produces.
        """
        if elements is None:
            return min(self.shards,
                       key=lambda s: (s.stream.available_at(now_us),
                                      s.shard_id))
        ledger = self.calibration_ledger()
        return min(
            self.shards,
            key=lambda s: (s.stream.available_at(now_us)
                           + ledger.ratio(s.device.name) * self.predict_us(
                               elements, key_bytes, value_bytes, s.device),
                           s.shard_id),
        )

    def assignment_weights(self, n: int, key_bytes: int,
                           value_bytes: int = 0) -> list[float]:
        """Per-shard split weights proportional to predicted throughput."""
        return assignment_weights(self.cost_model, n, key_bytes, value_bytes,
                                  [s.device for s in self.shards], self.config)

    def all_available_at(self, now_us: float) -> float:
        """Earliest time every shard is free — the barrier a sharded request needs."""
        return max(s.stream.available_at(now_us) for s in self.shards)


def plan_shard_assignment(
    children: list[SegmentDescriptor], num_shards: int,
    weights: Optional[Sequence[float]] = None,
) -> list[list[SegmentDescriptor]]:
    """Split level-1 buckets into contiguous, throughput-balanced shard groups.

    Buckets stay in start order (so each group is one contiguous range of the
    output) and groups are cut greedily at the running-total boundaries of the
    cumulative weight fractions: shard ``i`` targets
    ``total * weights[i] / sum(weights)`` elements. ``weights=None`` (or all
    equal) is the element-balanced split of a homogeneous pool; a mixed pool
    passes predicted device throughputs so every shard is expected to finish
    at the same instant. Returns only non-empty groups, so fewer buckets than
    shards simply leaves some shards out of this request.

    The split only moves *where* contiguous subtree groups run — never the
    buckets themselves — so the merged output is byte-identical whatever the
    weights.
    """
    total = sum(c.size for c in children)
    if total == 0 or not children:
        return [children] if children else []
    if weights is None:
        weights = [1.0] * num_shards
    if len(weights) != num_shards:
        raise ValueError(
            f"got {len(weights)} weights for {num_shards} shards"
        )
    if any(w <= 0 for w in weights):
        raise ValueError(f"assignment weights must be positive, got {weights}")
    weight_sum = sum(weights)
    cumulative = 0.0
    thresholds = []
    for weight in weights:
        cumulative += weight
        thresholds.append(total * cumulative / weight_sum)
    groups: list[list[SegmentDescriptor]] = []
    current: list[SegmentDescriptor] = []
    consumed = 0
    for child in children:
        current.append(child)
        consumed += child.size
        if (len(groups) < num_shards - 1
                and consumed >= thresholds[len(groups)]):
            groups.append(current)
            current = []
    if current:
        groups.append(current)
    return groups


def merge_shard_outputs(
    n: int,
    groups: list[list[SegmentDescriptor]],
    shard_keys: list[np.ndarray],
    shard_values: list[Optional[np.ndarray]],
    out_keys: np.ndarray,
    out_values: Optional[np.ndarray],
) -> None:
    """K-way merge of the shard outputs into the final arrays.

    Each shard produced one sorted, contiguous range of the output (as a
    group-local slice of length ``hi - lo``); because the scatter was
    splitter-based, the ranges are disjoint and ordered, so the merge is a
    gather in group order — verified by checking that every group covers
    exactly the span between its first and last bucket and that the spans
    tile ``[0, n)`` without gaps.
    """
    cursor = 0
    for group, keys, values in zip(groups, shard_keys, shard_values):
        lo = group[0].start
        hi = group[-1].start + group[-1].size
        if lo != cursor:
            raise AssertionError(
                f"shard outputs do not tile the result: expected range to "
                f"start at {cursor}, got {lo}"
            )
        if sum(c.size for c in group) != hi - lo:
            raise AssertionError("shard group is not contiguous")
        if keys.size != hi - lo:
            raise AssertionError(
                f"shard output of {keys.size} elements does not match its "
                f"group span of {hi - lo}"
            )
        out_keys[lo:hi] = keys
        if out_values is not None and values is not None:
            out_values[lo:hi] = values
        cursor = hi
    if cursor != n:
        raise AssertionError(
            f"shard outputs cover [0, {cursor}) but the request has {n} elements"
        )


def run_sharded(pool: ShardPool, keys: np.ndarray,
                values: Optional[np.ndarray], start_us: float,
                tracer=None) -> dict:
    """Scatter one oversized request across the pool, sort, merge.

    ``start_us`` is the simulated time the request is released to the pool.
    There is **no whole-pool barrier here**: the scatter starts as soon as
    the scatter stream is free, and each shard's subtree sort starts at the
    later of the scatter fan-out and *that shard's* own tail retiring — a
    shard still draining an in-flight batch delays only itself. (The
    ``launch_mode="barriered"`` ablation restores the old behaviour by
    passing a ``start_us`` at which every shard has quiesced.)
    Returns a dict with the merged ``keys`` / ``values``, the simulated
    ``completion_us`` (scatter + slowest shard, shards run concurrently), the
    total-work attribution (``predicted_us`` = scatter + *sum* of shards,
    ``kernel_launches``, ``launches_by_phase``) and per-shard details. With a
    :class:`repro.obs.Tracer`, the dict also carries ``trace_root`` — the id
    of a ``sharded_sort`` span covering scatter → fan-out → per-shard engine
    subtrees → merge on the pool clock.

    On failure every stream the run touched is rolled back to its pre-call
    state, so a retry does not double-book launches or shard busy time.
    """
    snapshot = _StreamSnapshot(
        [pool.scatter_stream] + [shard.stream for shard in pool.shards]
    )
    try:
        return _run_sharded_impl(pool, keys, values, start_us, tracer)
    except Exception:
        snapshot.rollback()
        raise


def _run_sharded_impl(pool: ShardPool, keys: np.ndarray,
                      values: Optional[np.ndarray], start_us: float,
                      tracer=None) -> dict:
    n = int(keys.size)
    sorter = pool.shards[0].sorter
    config = sorter.effective_config(keys, values)
    key_bytes = keys.dtype.itemsize
    value_bytes = 0 if values is None else values.dtype.itemsize
    # The scatter runs on the pool member the cost model predicts fastest
    # (pool order was the old, arbitrary choice); bytes are pinned by the
    # fingerprint check, only the scatter timing reflects the device.
    scatter_dev = pool.scatter_device(n, key_bytes, value_bytes)
    engine = DistributionEngine(scatter_dev, config)
    root = SegmentDescriptor(start=0, size=n, buffer="primary", depth=0)
    if engine.is_leaf(root):
        raise ValueError(
            f"request of {n} elements would not be distributed at all; "
            f"sharding it buys nothing — dispatch it as a plain batch instead"
        )

    wall_start = time.perf_counter()

    # 1. Splitter-based scatter: exactly the solo sort's level-0 pass.
    scatter_trace_start = len(pool.scatter_stream.trace)
    launcher = KernelLauncher(scatter_dev, trace=pool.scatter_stream.trace,
                              backend=config.backend)
    primary_keys = launcher.gmem.from_host(keys, name="keys_primary")
    aux_keys = launcher.gmem.alloc(n, keys.dtype, name="keys_aux")
    primary_values = aux_values = None
    if values is not None:
        primary_values = launcher.gmem.from_host(values, name="values_primary")
        aux_values = launcher.gmem.alloc(n, values.dtype, name="values_aux")
    children, level_info = engine.run_single_level(
        launcher, [root], primary_keys, primary_values, aux_keys, aux_values
    )
    scatter_slice = pool.scatter_stream.trace.slice_from(scatter_trace_start)
    scatter_us = scatter_slice.total_time_us
    scattered_keys = aux_keys.to_host()
    scattered_values = None if aux_values is None else aux_values.to_host()

    # 2. Contiguous subtree groups — one per shard, sized proportionally to
    #    each shard device's predicted throughput (equal split when the pool
    #    is homogeneous).
    weights = pool.assignment_weights(n, key_bytes, value_bytes)
    groups = plan_shard_assignment(children, len(pool), weights)
    scatter_start_us, fan_out_us = pool.scatter_stream.enqueue(
        scatter_us, start_us
    )

    # 3. Each shard sorts its subtrees; seeds depend only on (depth, start),
    #    so every subtree recursion matches the solo sort's byte for byte.
    out_keys = np.empty(n, dtype=keys.dtype)
    out_values = None if values is None else np.empty(n, dtype=values.dtype)
    shard_keys: list[np.ndarray] = []
    shard_values: list[Optional[np.ndarray]] = []
    shard_details: list[dict] = []
    launches = scatter_slice.kernel_count
    launches_by_phase = dict(scatter_slice.launches_by_phase())
    total_work_us = scatter_us
    completion_us = fan_out_us
    model_bookings: list[tuple[DeviceShard, float]] = []
    shard_utils: list[dict] = []
    shard_trace_info: list[tuple[int, Optional[int], float, float]] = []
    shard_critical_us = 0.0
    for group, shard in zip(groups, pool.shards):
        # The shard only needs its group's span [lo, hi). Descriptors are
        # rebased to span-local coordinates; shifting `base` by the same
        # amount keeps the sampling seed a function of the *absolute* offset,
        # so the shard's recursion still matches the solo sort's.
        lo = group[0].start
        hi = group[-1].start + group[-1].size
        roots = [replace(c, start=c.start - lo, base=c.base - lo)
                 for c in group]
        trace_start = len(shard.stream.trace)
        shard_launcher = KernelLauncher(shard.device, trace=shard.stream.trace,
                                        backend=config.backend)
        s_primary = shard_launcher.gmem.alloc(hi - lo, keys.dtype,
                                              name="keys_primary")
        s_aux = shard_launcher.gmem.from_host(scattered_keys[lo:hi],
                                              name="keys_aux")
        s_primary_values = s_aux_values = None
        if scattered_values is not None:
            s_primary_values = shard_launcher.gmem.alloc(
                hi - lo, values.dtype, name="values_primary"
            )
            s_aux_values = shard_launcher.gmem.from_host(
                scattered_values[lo:hi], name="values_aux"
            )
        # The shard's own engine: identical recursion (the fingerprint check
        # pins the geometry) but this device's clock/bandwidth in the timing.
        shard_engine = DistributionEngine(shard.device, config)
        stats = shard_engine.run(
            shard_launcher, s_primary, s_primary_values, s_aux, s_aux_values,
            roots=roots, tracer=tracer,
        )
        shard_slice = shard.stream.trace.slice_from(trace_start)
        shard_us = stats["predicted_us"]
        # The shard stream is occupied for the slot-packed makespan; the
        # serialized total still counts as the request's work attribution.
        shard_start_us, end_us = shard.stream.enqueue(
            stats.get("makespan_us", shard_us), fan_out_us
        )
        if tracer is not None:
            shard_trace_info.append(
                (shard.shard_id, stats.get("trace_root"),
                 shard_start_us, end_us)
            )
        completion_us = max(completion_us, end_us)
        total_work_us += shard_us
        if stats.get("utilization"):
            shard_utils.append(stats["utilization"])
            shard_critical_us = max(shard_critical_us,
                                    stats.get("critical_path_us", 0.0))
        launches += shard_slice.kernel_count
        for phase, count in shard_slice.launches_by_phase().items():
            launches_by_phase[phase] = launches_by_phase.get(phase, 0) + count
        shard_keys.append(s_primary.to_host())
        shard_values.append(
            None if s_primary_values is None else s_primary_values.to_host()
        )
        group_elements = sum(c.size for c in group)
        group_model_us = pool.predict_us(group_elements, key_bytes,
                                         value_bytes, shard.device)
        model_bookings.append((shard, group_model_us))
        shard_details.append({
            "shard_id": shard.shard_id,
            "device": shard.device.name,
            "elements": group_elements,
            "buckets": len(group),
            "predicted_us": shard_us,
            "model_us": group_model_us,
            "kernel_launches": shard_slice.kernel_count,
        })

    # 4. K-way merge of the ordered, disjoint shard ranges.
    merge_shard_outputs(n, groups, shard_keys, shard_values, out_keys, out_values)
    # Commit the cost-model bookings only now: a failure above rolled the
    # streams back, and the model ledger must not double-book a retry.
    for shard, group_model_us in model_bookings:
        shard.model_us += group_model_us
    wall_s = time.perf_counter() - wall_start

    # Pool-level slot accounting: the scatter is one serialized single-slot
    # pass on the coordinating device, then the shard schedules run
    # concurrently — so the merged makespan is the achieved wall window
    # (scatter start to last shard completion), not the sum of the parts.
    scatter_util = {
        "num_slots": 1,
        "ops": scatter_slice.kernel_count,
        "makespan_us": scatter_us,
        "critical_path_us": scatter_us,
        "serialized_us": scatter_us,
        "speedup": 1.0,
        "busy_slot_us": scatter_us,
        "idle_slot_us": 0.0,
        "saturated_us": scatter_us,
        "phases": {
            phase: {"ops": scatter_slice.launches_by_phase()[phase],
                    "busy_us": time_us, "span_us": time_us,
                    "concurrency": 1.0, "saturated_us": time_us}
            for phase, time_us in scatter_slice.phase_breakdown().items()
        },
    }
    utilization = merge_utilization(
        [scatter_util] + shard_utils,
        makespan_us=completion_us - scatter_start_us,
    )
    # Shards run in parallel: the pool's dependency lower bound is the
    # scatter plus the longest shard chain, not the sum of all chains.
    utilization["critical_path_us"] = scatter_us + shard_critical_us

    outcome_trace: dict = {}
    if tracer is not None:
        root_span = tracer.span(
            "sharded_sort", layer="shards",
            start_us=scatter_start_us, end_us=completion_us,
            lane="sharded request", n=n, shards=len(shard_details),
            scatter_us=scatter_us, predicted_us=total_work_us,
        )
        tracer.span(
            "scatter", layer="shards",
            start_us=scatter_start_us, end_us=fan_out_us,
            parent=root_span, lane="scatter",
            kernel_launches=scatter_slice.kernel_count,
        )
        for sid, engine_root, s_start, s_end in shard_trace_info:
            shard_span = tracer.span(
                "shard_sort", layer="shards",
                start_us=s_start, end_us=s_end,
                parent=root_span, shard_id=sid, lane=f"shard {sid}",
            )
            if engine_root is not None:
                tracer.rebase(engine_root, s_start)
                _label_launch_lanes(tracer, engine_root, sid)
                tracer.adopt(engine_root, shard_span)
        # The merge itself is free in the simulator (a host-side gather of
        # disjoint ranges); the zero-width span still marks where it happens.
        tracer.span(
            "merge", layer="shards",
            start_us=completion_us, end_us=completion_us,
            parent=root_span, lane="merge", zero_cost=True,
        )
        outcome_trace["trace_root"] = root_span.span_id

    return {
        **outcome_trace,
        "keys": out_keys,
        "values": out_values,
        "start_us": scatter_start_us,
        "completion_us": completion_us,
        "scatter_us": scatter_us,
        "scatter_device": scatter_dev.name,
        "critical_path_us": completion_us - scatter_start_us,
        "predicted_us": total_work_us,
        "kernel_launches": launches,
        "launches_by_phase": launches_by_phase,
        "shards": shard_details,
        "scatter_utilisation": level_info.get("fused_utilisation"),
        "utilization": utilization,
        "wall_s": wall_s,
    }


__all__ = [
    "DeviceShard",
    "ShardPool",
    "plan_shard_assignment",
    "merge_shard_outputs",
    "run_sharded",
]
