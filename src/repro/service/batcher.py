"""Micro-batching scheduler: when is a batch worth dispatching?

The trade-off is the classic serving one: dispatching immediately minimises
latency for the head request but wastes the launch-amortisation that
:meth:`~repro.core.sample_sort.SampleSorter.sort_many` exists to provide;
waiting fills the batch but charges the wait to every queued request's
latency. :class:`MicroBatcher` resolves it with a budget policy:

* dispatch as soon as the candidate batch is *full* (request count or element
  budget reached),
* otherwise wait for more compatible arrivals, but never longer than
  ``max_wait_us`` past the head request's arrival,
* and never wait at all when no further arrivals are pending (the scheduler is
  work-conserving: an idle service with a non-empty queue always dispatches).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .queue import RequestQueue, SortRequest


@dataclass(frozen=True)
class BatchPolicy:
    """Latency/size budget of the micro-batcher."""

    #: Most requests coalesced into one engine run.
    max_requests: int = 8
    #: Most elements coalesced into one engine run (ping-pong buffer budget).
    max_elements: int = 1 << 18
    #: Longest a head request may wait for companions, in simulated us.
    max_wait_us: float = 500.0

    def __post_init__(self) -> None:
        if self.max_requests < 1:
            raise ValueError(f"max_requests must be >= 1, got {self.max_requests}")
        if self.max_elements < 1:
            raise ValueError(f"max_elements must be >= 1, got {self.max_elements}")
        if self.max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {self.max_wait_us}")


@dataclass
class MicroBatch:
    """A dispatchable group of batching-compatible requests."""

    batch_id: int
    requests: list[SortRequest]
    formed_us: float

    @property
    def elements(self) -> int:
        return sum(r.n for r in self.requests)


@dataclass
class MicroBatcher:
    """Forms :class:`MicroBatch` es from a :class:`RequestQueue`."""

    policy: BatchPolicy = field(default_factory=BatchPolicy)
    #: Requests larger than this never join a batch as companions (the
    #: service's sharded path handles them when they reach the queue head).
    companion_limit: int | None = None
    _next_batch_id: int = 0

    def candidate(self, queue: RequestQueue) -> list[SortRequest]:
        """The batch that would be dispatched right now (may be unripe)."""
        return self.candidate_state(queue)[0]

    def candidate_state(self, queue: RequestQueue
                        ) -> tuple[list[SortRequest], bool]:
        """``(candidate, closed)`` — closed candidates can never grow."""
        return queue.gather_group_state(self.policy.max_requests,
                                        self.policy.max_elements,
                                        companion_limit=self.companion_limit)

    def is_full(self, candidate: list[SortRequest]) -> bool:
        """A full candidate is dispatched immediately, no waiting."""
        if len(candidate) >= self.policy.max_requests:
            return True
        return sum(r.n for r in candidate) >= self.policy.max_elements

    def deadline_us(self, queue: RequestQueue) -> float:
        """Latest dispatch time the head request's latency budget allows."""
        return queue.peek().arrival_us + self.policy.max_wait_us

    def take(self, queue: RequestQueue, now_us: float,
             requests: list[SortRequest] | None = None) -> MicroBatch:
        """Remove the current candidate from the queue and seal it as a batch.

        ``requests`` lets a caller that already gathered the candidate (for a
        dispatch-readiness check) hand it over instead of re-scanning the
        queue.
        """
        if requests is None:
            requests = self.candidate(queue)
        if not requests:
            raise ValueError("cannot form a batch from an empty queue")
        queue.remove(requests)
        batch = MicroBatch(
            batch_id=self._next_batch_id, requests=requests, formed_us=now_us
        )
        self._next_batch_id += 1
        return batch


__all__ = ["BatchPolicy", "MicroBatch", "MicroBatcher"]
