"""The sort service: queue -> micro-batcher -> shard pool -> merge.

:class:`SortService` is a discrete-event simulation of an async serving
system. Callers :meth:`~SortService.submit` requests (optionally with a
simulated ``arrival_us`` timestamp); :meth:`~SortService.drain` replays the
arrivals against the shard pool and returns a :class:`ServiceResult` per
request with full attribution:

* latency split into queue wait and execution,
* the request's pro-rated share of its batch's predicted device time and
  kernel launches (shares sum to the batch totals),
* which batch and shard served it.

Scheduling rules (all deterministic):

* requests are admitted at submit time — a full queue raises
  :class:`~repro.service.queue.QueueFullError` (backpressure), an oversized
  request raises :class:`~repro.service.queue.OversizeRequestError`;
* the micro-batcher coalesces same-dtype requests until the batch is full,
  the head request's ``max_wait_us`` budget expires, or no further arrivals
  are pending (work-conserving);
* a batch is dispatched to the shard whose stream frees up first;
* a request larger than the sharding threshold takes the whole pool: a
  splitter-based scatter fans its buckets out to every shard and a k-way
  merge reassembles the output, byte-identical to a solo sort.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.config import SampleSortConfig
from ..core.engine import DistributionEngine, SegmentDescriptor
from ..core.launch_plan import merge_utilization
from ..gpu.device import DeviceSpec, TESLA_C1060
from ..gpu.errors import GpuSimError, UnsupportedInputError
from ..obs import EventLog, MetricsRegistry, SLOEngine, SLOSpec, Tracer
from ..obs.sli import REJECTED_US, REQUEST_ELEMENTS
from .batcher import BatchPolicy, MicroBatcher
from .queue import (
    OversizeRequestError,
    QueueFullError,
    RequestQueue,
    SortRequest,
    companion_verdict,
)
from .shards import ShardPool, run_sharded


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`SortService` needs to know at construction."""

    #: Number of simulated devices in the shard pool.
    num_shards: int = 2
    #: Device preset every shard uses.
    device: DeviceSpec = TESLA_C1060
    #: Optional per-shard device list for heterogeneous pools (e.g. a mixed
    #: C1060/GTX-285 pool). Takes precedence over ``num_shards``/``device``
    #: when given; every entry must share one functional fingerprint (see
    #: :class:`~repro.service.shards.ShardPool`).
    devices: Optional[tuple[DeviceSpec, ...]] = None
    #: Sorter configuration shared by every shard.
    sorter: SampleSortConfig = field(default_factory=SampleSortConfig.paper)
    #: Admission control: most requests waiting at once (backpressure bound).
    queue_capacity: int = 64
    #: Admission control: largest single request the service accepts.
    max_request_elements: int = 1 << 22
    #: Micro-batching budgets (see :class:`BatchPolicy`).
    max_batch_requests: int = 8
    max_batch_elements: int = 1 << 18
    max_wait_us: float = 500.0
    #: Requests larger than this are sharded across the whole pool instead of
    #: riding in a micro-batch. ``None`` defaults to ``max_batch_elements``.
    #: Sharding needs >= 2 shards; with one shard the request is a solo batch.
    shard_threshold: Optional[int] = None
    #: Service-level objectives evaluated at each drain (see
    #: :class:`repro.obs.SLOSpec`); empty means no SLO engine is built and
    #: :meth:`SortService.health_snapshot` reports signals only.
    slos: tuple[SLOSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "slos", tuple(self.slos))
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.max_request_elements < 1:
            raise ValueError("max_request_elements must be >= 1")
        if self.devices is not None:
            object.__setattr__(self, "devices", tuple(self.devices))
            if not self.devices:
                raise ValueError("devices must name >= 1 shard device")

    @property
    def shard_devices(self) -> tuple[DeviceSpec, ...]:
        """The per-shard device list the pool is built from."""
        if self.devices is not None:
            return self.devices
        return (self.device,) * self.num_shards

    @property
    def effective_num_shards(self) -> int:
        return len(self.shard_devices)

    @property
    def effective_shard_threshold(self) -> int:
        return (self.max_batch_elements if self.shard_threshold is None
                else self.shard_threshold)

    def batch_policy(self) -> BatchPolicy:
        return BatchPolicy(
            max_requests=self.max_batch_requests,
            max_elements=self.max_batch_elements,
            max_wait_us=self.max_wait_us,
        )


@dataclass
class ServiceResult:
    """One request's output plus its attribution and timeline."""

    request_id: int
    keys: np.ndarray
    values: Optional[np.ndarray]
    n: int
    arrival_us: float
    dispatch_us: float
    completion_us: float
    #: Which micro-batch served the request (None for sharded requests).
    batch_id: Optional[int]
    #: How many requests shared the batch (1 for sharded requests).
    batch_requests: int
    #: Shard ids that executed the request (several for sharded requests).
    shard_ids: tuple[int, ...]
    #: This request's pro-rated share of predicted device time, in us.
    predicted_us: float
    #: Pro-rated (fractional) kernel launches; sums to batch totals.
    kernel_launches: float
    launches_by_phase: dict
    #: Host wall seconds of the functional simulation, pro-rated by elements.
    wall_s: float
    sharded: bool = False

    @property
    def latency_us(self) -> float:
        return self.completion_us - self.arrival_us

    @property
    def queue_wait_us(self) -> float:
        return self.dispatch_us - self.arrival_us


class SortService:
    """Async sharded sort service over the batched distribution engine.

    Telemetry lives in a :class:`repro.obs.MetricsRegistry` (``self.metrics``)
    — the admission counters and latency histograms :meth:`stats` renders are
    views over it. With ``config.sorter.trace_mode == "spans"`` (or an
    explicit ``tracer``), every served request additionally records a
    request-scoped span tree (queue wait → dispatch wait → execute → engine
    launches) retrievable via :meth:`request_span`; ``pid_label`` names the
    Perfetto process lane (a cluster replica passes ``"replica N"``).
    """

    #: ``stats()["counts"]`` keys, in their historical render order; each is
    #: backed by a ``requests`` counter labelled with the event name.
    _COUNT_EVENTS = ("submitted", "completed", "rejected_queue_full",
                     "rejected_oversize", "rejected_invalid",
                     "sharded_requests")

    def __init__(self, config: Optional[ServiceConfig] = None, *,
                 tracer: Optional[Tracer] = None, pid_label: str = "service",
                 events: Optional[EventLog] = None):
        self.config = config if config is not None else ServiceConfig()
        self.pool = ShardPool(
            devices=self.config.shard_devices, config=self.config.sorter
        )
        self.metrics = MetricsRegistry()
        for event in self._COUNT_EVENTS:
            self.metrics.counter("requests", event=event)
        if tracer is None and self.config.sorter.trace_mode == "spans":
            tracer = Tracer()
        self.tracer = tracer
        #: Structured event log (admission rejects, SLO transitions). Shared
        #: with the front end when a cluster replica passes its own; gated on
        #: the same switch as tracing, so ``trace_mode="off"`` records zero
        #: events (the trace-off parity sweep pins this).
        self.events = (events if events is not None else
                       EventLog(enabled=self.config.sorter.trace_mode
                                == "spans"))
        self.slo_engine = (SLOEngine(self.config.slos, self.metrics,
                                     events=self.events)
                           if self.config.slos else None)
        self._pid_label = pid_label
        self._request_spans: dict[int, object] = {}
        self.batcher = MicroBatcher(
            policy=self.config.batch_policy(),
            companion_limit=(self.config.effective_shard_threshold
                             if self.config.effective_num_shards >= 2
                             else None),
        )
        #: The backlog IS the bounded queue — its push is the single
        #: admission-control implementation (QueueFullError backpressure).
        self._backlog = RequestQueue(capacity=self.config.queue_capacity)
        self._config_cache: dict[tuple, SampleSortConfig] = {}
        #: Running predicted drain time of the backlog — kept in lockstep
        #: with the backlog (O(1) reads for the balancer, like
        #: ``RequestQueue.elements``).
        self._pending_predicted_us = 0.0
        self._next_request_id = 0
        self._results: dict[int, ServiceResult] = {}
        self._batches: list[dict] = []
        #: Per-dispatch slot-utilisation dicts (batches and sharded requests)
        #: merged into the ``stats()`` utilization section.
        self._utilizations: list[dict] = []
        self._queue_depth_peak = 0
        self._wall_s = 0.0

    def _count(self, event: str) -> None:
        self.metrics.counter("requests", event=event).inc()

    def _observe_result(self, result: "ServiceResult") -> None:
        """Feed the latency histograms at the single result-commit point.

        Latency and element count are observed back to back with the same
        completion timestamp, so any SLI window sees them zip-aligned (the
        pairing :func:`repro.obs.sli.window_sli` weighs goodput with).
        """
        at_us = result.completion_us
        self.metrics.histogram("latency_us").observe(result.latency_us,
                                                     at_us=at_us)
        self.metrics.histogram("queue_wait_us").observe(result.queue_wait_us,
                                                        at_us=at_us)
        self.metrics.histogram(REQUEST_ELEMENTS).observe(float(result.n),
                                                         at_us=at_us)

    def _observe_rejection(self, reason: str, elements: int,
                           arrival_us: float) -> None:
        """Feed the rejection histogram + event log at every admission bounce."""
        self.metrics.histogram(REJECTED_US).observe(float(elements),
                                                    at_us=arrival_us)
        self.events.record("admission_reject", at_us=arrival_us,
                           severity="warning", layer="service",
                           reason=reason, elements=int(elements))

    # ------------------------------------------------------------- submission
    def submit(self, keys: np.ndarray, values: Optional[np.ndarray] = None,
               arrival_us: float = 0.0) -> int:
        """Admit one request; returns its id or raises an admission error.

        ``arrival_us`` places the request on the simulated timeline (defaults
        to time zero, i.e. "already waiting when the service starts").
        Admission is checked immediately: a backlog at ``queue_capacity``
        raises :class:`QueueFullError`, a request larger than
        ``max_request_elements`` raises :class:`OversizeRequestError`.
        """
        self._count("submitted")
        try:
            request = SortRequest(
                request_id=self._next_request_id, keys=keys, values=values,
                arrival_us=float(arrival_us),
            )
        except UnsupportedInputError:
            self._count("rejected_invalid")
            self._observe_rejection("invalid",
                                    int(getattr(keys, "size", 0) or 0),
                                    float(arrival_us))
            raise
        if request.n > self.config.max_request_elements:
            self._count("rejected_oversize")
            self._observe_rejection("oversize", request.n, request.arrival_us)
            raise OversizeRequestError(
                f"request of {request.n} elements exceeds the admission limit "
                f"of {self.config.max_request_elements}"
            )
        try:
            # Validates the sorter config against the device for this dtype
            # group now — a request that can only fail at dispatch would
            # otherwise poison the backlog (drain requeues failures).
            self._group_config(request)
        except GpuSimError:
            self._count("rejected_invalid")
            self._observe_rejection("invalid", request.n, request.arrival_us)
            raise
        try:
            self._backlog.push(request)
        except QueueFullError:
            self._count("rejected_queue_full")
            self._observe_rejection("queue_full", request.n,
                                    request.arrival_us)
            raise
        self._pending_predicted_us += self._request_predicted_us(request)
        self._next_request_id += 1
        return request.request_id

    def _request_predicted_us(self, request: SortRequest) -> float:
        """Predicted pool drain time of one request (memoised cost model)."""
        return self.pool.predict_request_us(
            request.n, request.keys.dtype.itemsize,
            0 if request.values is None else request.values.dtype.itemsize,
        )

    def _group_config(self, request: SortRequest) -> SampleSortConfig:
        """Effective (device-validated) sorter config for the request's dtypes.

        Memoised per batching group: the result depends only on the key/value
        dtypes, and the event loop re-asks for the head's config on every
        wait iteration.
        """
        config = self._config_cache.get(request.group)
        if config is None:
            sorter = self.pool.shards[0].sorter
            config = sorter.effective_config(request.keys, request.values)
            self._config_cache[request.group] = config
        return config

    # ------------------------------------------------------------ event loop
    def drain(self) -> dict[int, ServiceResult]:
        """Serve every pending request; returns ``{request_id: result}``.

        Failure safety: results are committed to :meth:`results` /
        :meth:`stats` accounting as each batch finishes, and if a dispatch
        raises, every not-yet-dispatched request is returned to the backlog —
        already-completed work survives and a later :meth:`drain` retries the
        rest.
        """
        arrivals = sorted(self._backlog.pop_all(),
                          key=lambda r: (r.arrival_us, r.request_id))
        self._pending_predicted_us = 0.0
        queue = RequestQueue(capacity=max(1, len(arrivals)))
        drained: dict[int, ServiceResult] = {}
        now = 0.0
        index = 0

        def enqueue_due(now_us: float) -> int:
            nonlocal index
            while index < len(arrivals) and arrivals[index].arrival_us <= now_us:
                queue.push(arrivals[index])
                index += 1
            return index

        try:
            while index < len(arrivals) or len(queue):
                if not len(queue):
                    now = max(now, arrivals[index].arrival_us)
                enqueue_due(now)

                head = queue.peek()
                if self._should_shard(head):
                    queue.remove([head])
                    try:
                        result = self._dispatch_sharded(head, now)
                    except Exception:
                        queue.push(head)  # keep the request for a retry drain
                        raise
                    drained[head.request_id] = result
                    self._results[head.request_id] = result
                    self._observe_result(result)
                    continue

                candidate, closed = self.batcher.candidate_state(queue)
                if (not closed and not self.batcher.is_full(candidate)
                        and index < len(arrivals)):
                    joinable = self._next_joinable_arrival(
                        head, candidate, arrivals, index,
                        self.batcher.deadline_us(queue),
                    )
                    if joinable is not None:
                        # Worth waiting: a compatible companion arrives
                        # inside the head request's latency budget.
                        now = max(now, joinable)
                        continue
                    # No future arrival could join this batch before the
                    # deadline: dispatch right away (work-conserving).
                batch = self.batcher.take(queue, now, requests=candidate)
                try:
                    for request, result in self._dispatch_batch(batch, now):
                        drained[request.request_id] = result
                        self._results[request.request_id] = result
                        self._observe_result(result)
                except Exception:
                    for request in batch.requests:
                        if request.request_id not in drained:
                            queue.push(request)
                    raise
        finally:
            # Leftovers fit: they are a subset of what the backlog just held.
            for request in queue.pop_all() + arrivals[index:]:
                self._backlog.push(request)
                self._pending_predicted_us += \
                    self._request_predicted_us(request)
            self._queue_depth_peak = max(self._queue_depth_peak,
                                         queue.depth_peak,
                                         self._backlog.depth_peak)
        self._evaluate_slos(drained.values())
        return drained

    def _evaluate_slos(self, results) -> None:
        """Advance the SLO engine through this drain's completion times.

        Evaluation points are the *sorted* completion timestamps of the
        drained results — a pure function of the results themselves, so
        commit order (and launch-slot tie-breaking under ``barriered``
        ablations) cannot change which transitions fire. Timestamps the
        engine already moved past (overlapping work from an earlier drain)
        fold into later windows instead of replaying time backwards.
        """
        if self.slo_engine is None or not results:
            return
        floor = self.slo_engine.last_evaluated_us
        for at_us in sorted({r.completion_us for r in results}):
            if floor is None or at_us >= floor:
                self.slo_engine.evaluate(at_us)

    def _next_joinable_arrival(self, head: SortRequest,
                               candidate: list[SortRequest],
                               arrivals: list[SortRequest], index: int,
                               deadline_us: float) -> Optional[float]:
        """Arrival time of the first future request that could actually join
        the head's batch before its deadline, or ``None``.

        Waiting is only worthwhile for an arrival that is batching-compatible
        (same dtype group), below the companion limit and within the element
        budget; an incompatible arrival stream must not stall the head until
        its deadline. Eligibility is decided by the same
        :func:`companion_verdict` rule the queue's gatherer applies, so the
        scheduler never waits for an arrival the gatherer would not batch —
        including treating a same-group arrival that busts the element budget
        as the end of the batch.
        """
        elements = sum(r.n for r in candidate)
        for request in arrivals[index:]:
            if request.arrival_us >= deadline_us:
                return None
            verdict = companion_verdict(
                head.group, elements, request,
                self.batcher.policy.max_elements, self.batcher.companion_limit,
            )
            if verdict == "skip":
                continue
            if verdict == "close":
                return None
            return request.arrival_us
        return None

    # -------------------------------------------------------------- dispatch
    def _should_shard(self, request: SortRequest) -> bool:
        if len(self.pool) < 2:
            return False
        if request.n <= self.config.effective_shard_threshold:
            return False
        # Sharding only helps when the engine would actually distribute.
        config = self._group_config(request)
        root = SegmentDescriptor(start=0, size=request.n, buffer="primary",
                                 depth=0)
        return not DistributionEngine(self.pool.device, config).is_leaf(root)

    def _dispatch_batch(self, batch, now_us: float):
        elements = batch.elements
        key_bytes = batch.requests[0].keys.dtype.itemsize
        value_bytes = (0 if batch.requests[0].values is None
                       else batch.requests[0].values.dtype.itemsize)
        shard = self.pool.least_loaded(now_us, elements=elements,
                                       key_bytes=key_bytes,
                                       value_bytes=value_bytes)
        batch_keys = [r.keys for r in batch.requests]
        batch_values = ([r.values for r in batch.requests]
                        if batch.requests[0].values is not None else None)
        results, start_us, end_us, wall_s = shard.run_batch(
            batch_keys, batch_values, now_us, tracer=self.tracer
        )
        self._wall_s += wall_s
        batch_span = None
        if self.tracer is not None:
            # The batch span is a root of its own: several requests share it,
            # so it cannot live inside any single request's trace. Request
            # "execute" segments point at it via the ``batch_span`` attribute.
            batch_span = self.tracer.span(
                "batch", layer="service", start_us=start_us, end_us=end_us,
                batch_id=batch.batch_id, shard_id=shard.shard_id,
                requests=len(batch.requests), elements=elements,
                lane=f"shard {shard.shard_id}", pid_label=self._pid_label,
            )
            if "trace_root" in results[0].stats:
                self.tracer.adopt(results[0].stats["trace_root"], batch_span)
        # Book the cost-model prediction only after the dispatch succeeded —
        # a failed run_batch rolled its stream back, so the model ledger must
        # match.
        shard.model_us += self.pool.predict_us(elements, key_bytes,
                                               value_bytes, shard.device)
        if results[0].stats.get("utilization"):
            self._utilizations.append(results[0].stats["utilization"])
        self._batches.append({
            "batch_id": batch.batch_id,
            "shard_id": shard.shard_id,
            "device": shard.device.name,
            "requests": len(batch.requests),
            "elements": elements,
            # A head request above the element budget still ships alone, so a
            # batch can hold more than max_elements; it is simply full.
            "occupancy": min(1.0, elements / self.batcher.policy.max_elements),
            "start_us": start_us,
            "end_us": end_us,
            "predicted_us": end_us - start_us,
        })
        for request, result in zip(batch.requests, results):
            share = request.n / elements if elements else 0.0
            self._count("completed")
            if self.tracer is not None:
                self._record_request_spans(
                    request, formed_us=batch.formed_us, start_us=start_us,
                    end_us=end_us, batch_span=batch_span,
                )
            yield request, ServiceResult(
                request_id=request.request_id,
                keys=result.keys,
                values=result.values,
                n=request.n,
                arrival_us=request.arrival_us,
                dispatch_us=start_us,
                completion_us=end_us,
                batch_id=batch.batch_id,
                batch_requests=len(batch.requests),
                shard_ids=(shard.shard_id,),
                predicted_us=result.stats["request_time_us"],
                kernel_launches=result.stats["request_launches"],
                launches_by_phase=result.stats["request_launches_by_phase"],
                wall_s=wall_s * share,
            )

    def _record_request_spans(self, request: SortRequest, *, formed_us: float,
                              start_us: float, end_us: float,
                              batch_span=None, execute_child=None):
        """Record one served request's span tree: the ``request`` root tiled
        by ``queue_wait`` / ``dispatch_wait`` / ``execute`` segments.

        The segments share boundary timestamps (arrival → batch-formed →
        stream-start → stream-end), so the decomposition reconciles with the
        request latency by construction. ``batch_span`` cross-references the
        shared batch (several requests ride one batch, so the batch span
        cannot live inside a single request's trace); ``execute_child`` is a
        subtree (a sharded run) adopted under the execute segment.
        """
        tracer = self.tracer
        req_span = tracer.span(
            "request", layer="service",
            start_us=request.arrival_us, end_us=end_us,
            request_id=request.request_id, n=request.n,
            lane=f"request {request.request_id}", pid_label=self._pid_label,
        )
        tracer.span("queue_wait", layer="service",
                    start_us=request.arrival_us, end_us=formed_us,
                    parent=req_span, kind="segment")
        tracer.span("dispatch_wait", layer="service",
                    start_us=formed_us, end_us=start_us,
                    parent=req_span, kind="segment")
        execute_attrs = {}
        if batch_span is not None:
            execute_attrs = {"batch_span": batch_span.span_id,
                             "batch_id": batch_span.attributes["batch_id"],
                             "shard_id": batch_span.attributes["shard_id"]}
        execute = tracer.span("execute", layer="service",
                              start_us=start_us, end_us=end_us,
                              parent=req_span, kind="segment",
                              **execute_attrs)
        if execute_child is not None:
            tracer.adopt(execute_child, execute)
        self._request_spans[request.request_id] = req_span
        return req_span

    def request_span(self, request_id: int):
        """The ``request`` root :class:`repro.obs.Span` recorded for one
        served request, or ``None`` (request unserved, or tracing off)."""
        return self._request_spans.get(request_id)

    def _dispatch_sharded(self, request: SortRequest,
                          now_us: float) -> ServiceResult:
        if self.pool.config.launch_mode == "barriered":
            # Ablation: quiesce the whole pool before the scatter begins.
            start_us = self.pool.all_available_at(now_us)
        else:
            # Pipelined: release the request now. The scatter starts as soon
            # as the scatter stream frees up, and each shard begins its
            # subtrees the moment its own in-flight tail retires — a busy
            # shard no longer stalls the idle ones.
            start_us = now_us
        outcome = run_sharded(self.pool, request.keys, request.values,
                              start_us, tracer=self.tracer)
        if outcome.get("utilization"):
            self._utilizations.append(outcome["utilization"])
        self._wall_s += outcome["wall_s"]
        self._count("completed")
        self._count("sharded_requests")
        if self.tracer is not None:
            self._record_request_spans(
                request, formed_us=now_us, start_us=outcome["start_us"],
                end_us=outcome["completion_us"],
                execute_child=outcome.get("trace_root"),
            )
        return ServiceResult(
            request_id=request.request_id,
            keys=outcome["keys"],
            values=outcome["values"],
            n=request.n,
            arrival_us=request.arrival_us,
            dispatch_us=outcome["start_us"],
            completion_us=outcome["completion_us"],
            batch_id=None,
            batch_requests=1,
            shard_ids=tuple(d["shard_id"] for d in outcome["shards"]),
            predicted_us=outcome["predicted_us"],
            kernel_launches=float(outcome["kernel_launches"]),
            launches_by_phase=outcome["launches_by_phase"],
            wall_s=outcome["wall_s"],
            sharded=True,
        )

    # ----------------------------------------------------- load inspection
    # Hooks for a front-end (the cluster's load balancer) that must compare
    # replica load *before* any drain has run: the undrained backlog is the
    # outstanding work.
    @property
    def pending_requests(self) -> int:
        """Number of admitted, not-yet-drained requests."""
        return len(self._backlog)

    @property
    def pending_elements(self) -> int:
        """Total elements admitted but not yet drained (O(1) read)."""
        return self._backlog.elements

    @property
    def pending_predicted_us(self) -> float:
        """Predicted device time to drain the backlog across this pool.

        The device-aware load signal: each pending request is priced by the
        pool's cost model (its size, its dtypes, this pool's devices), so a
        front end comparing replicas sees that a GTX-285 pool drains the same
        backlog faster than a C1060 pool. O(1): the total is maintained in
        lockstep with the backlog, like :attr:`pending_elements`.
        """
        return self._pending_predicted_us

    @property
    def queue_capacity(self) -> int:
        return self.config.queue_capacity

    # ------------------------------------------------------------- telemetry
    def results(self) -> dict[int, ServiceResult]:
        """Every completed request so far — survives a failed :meth:`drain`."""
        return dict(self._results)

    def result(self, request_id: int) -> Optional[ServiceResult]:
        """One completed request's result, or ``None`` if not (yet) served.

        O(1), no snapshot copy — the lookup a front end uses to collect the
        requests it routed here without copying the whole history.
        """
        return self._results.get(request_id)

    def stats(self) -> dict:
        """Service-level statistics over everything drained so far.

        Throughput is reported over the makespan (first arrival to last
        completion). A degenerate makespan of zero — a single request whose
        batch predicted no device time, or several requests completing at one
        timestamp — reports ``elements_per_us`` / ``requests_per_ms`` of
        ``0.0`` rather than ``inf``: no time window was observed, so no rate
        claim is made, and downstream aggregation (means over runs, JSON
        serialisation) stays finite.
        """
        results = list(self._results.values())
        snapshot: dict = {
            "counts": {event: self.metrics.counter("requests", event=event).value
                       for event in self._COUNT_EVENTS},
            "num_shards": len(self.pool),
            "devices": [d.name for d in self.pool.devices],
            "heterogeneous_pool": self.pool.heterogeneous,
            # the backlog's own high-water mark makes backpressure visible
            # between drains, not just after one
            "queue_depth_peak": max(self._queue_depth_peak,
                                    self._backlog.depth_peak),
            "batches": len(self._batches),
            "wall_s": self._wall_s,
        }
        if self._batches:
            snapshot["batch_occupancy"] = {
                "mean_requests": float(np.mean(
                    [b["requests"] for b in self._batches])),
                "mean_element_fill": float(np.mean(
                    [b["occupancy"] for b in self._batches])),
                "max_requests": max(b["requests"] for b in self._batches),
            }
        if results:
            makespan_us = (max(r.completion_us for r in results)
                           - min(r.arrival_us for r in results))
            total_elements = sum(r.n for r in results)
            # Histograms observed at the result-commit point, in commit order
            # — np.percentile over the same floats in the same order the
            # ad-hoc result-list math historically used, so p50/p95 do not
            # move; p99 rides along from the same snapshot.
            latency = self.metrics.histogram("latency_us").snapshot(
                percentiles=(50, 95, 99))
            snapshot["latency_us"] = {
                "p50": latency["p50"],
                "p95": latency["p95"],
                "p99": latency["p99"],
                "mean": latency["mean"],
                "max": latency["max"],
            }
            queue_wait = self.metrics.histogram("queue_wait_us").snapshot(
                percentiles=(50,))
            snapshot["queue_wait_us"] = {
                "p50": queue_wait["p50"],
                "max": queue_wait["max"],
            }
            snapshot["throughput"] = {
                "makespan_us": makespan_us,
                # 0.0 on a zero makespan: no observed window, no rate claim.
                "elements_per_us": (total_elements / makespan_us
                                    if makespan_us > 0 else 0.0),
                "requests_per_ms": (1e3 * len(results) / makespan_us
                                    if makespan_us > 0 else 0.0),
            }
        else:
            # Zero completed requests (nothing submitted, or every drain so
            # far served nothing): percentiles over an empty array would be
            # NaN / IndexError, so the sections exist but report zeros — the
            # report renderer shows a "no requests" line instead.
            snapshot["latency_us"] = {"p50": 0.0, "p95": 0.0, "p99": 0.0,
                                      "mean": 0.0, "max": 0.0}
            snapshot["queue_wait_us"] = {"p50": 0.0, "max": 0.0}
            snapshot["throughput"] = {"makespan_us": 0.0,
                                      "elements_per_us": 0.0,
                                      "requests_per_ms": 0.0}
        snapshot["shards"] = [
            {
                "shard_id": shard.shard_id,
                "device": shard.device.name,
                "operations": shard.stream.operations,
                "busy_until_us": shard.stream.busy_until_us,
                "stream_launches": shard.stream.trace.kernel_count,
                "stream_time_us": shard.stream.busy_us,
                # cost-model prediction vs the simulator's traced time for
                # the same dispatched work — the per-device accuracy check
                "model_us": shard.model_us,
                "model_ratio": (shard.model_us / shard.stream.busy_us
                                if shard.stream.busy_us > 0 else 0.0),
            }
            for shard in self.pool.shards
        ]
        if self.pool.scatter_stream.operations:
            snapshot["scatter_stream"] = {
                "operations": self.pool.scatter_stream.operations,
                "stream_time_us": self.pool.scatter_stream.busy_us,
            }
        if self._utilizations:
            # Dispatches run back to back from each stream's point of view,
            # so the merged (summed) makespan is the honest aggregate; the
            # speedup over the serialized launch total is what the launch
            # packer bought across everything this service served.
            # Dispatches reuse the same stream slots, so slot counts are not
            # additive across them — report the widest packing seen.
            snapshot["utilization"] = merge_utilization(
                self._utilizations,
                num_slots=max(u.get("num_slots", 1)
                              for u in self._utilizations),
            )
        return snapshot

    def health_snapshot(self) -> dict:
        """Operator-facing health view: SLO status, budgets, recent trouble.

        Deliberately a *separate* method from :meth:`stats` — the stats dict
        is pinned byte-identical across trace modes and PRs, while this view
        grows with the SLO/event machinery. Renders with
        :func:`repro.harness.format_health_report`.
        """
        results = list(self._results.values())
        now_us = max((r.completion_us for r in results), default=0.0)
        makespan_us = (now_us - min(r.arrival_us for r in results)
                       if results else 0.0)
        return {
            "layer": "service",
            "now_us": now_us,
            "slos": (self.slo_engine.status()
                     if self.slo_engine is not None else []),
            "slo_transitions": (self.slo_engine.transitions()
                                if self.slo_engine is not None else []),
            "events": self.events.stats(),
            "recent_events": [e.as_dict() for e in
                              self.events.recent(8, min_severity="warning")],
            "counts": {event:
                       self.metrics.counter("requests", event=event).value
                       for event in self._COUNT_EVENTS},
            "pending_requests": self.pending_requests,
            "queue_depth_peak": max(self._queue_depth_peak,
                                    self._backlog.depth_peak),
            "occupancy": [
                {
                    "id": f"shard {shard.shard_id}",
                    "device": shard.device.name,
                    "busy_us": shard.stream.busy_us,
                    "occupancy": (shard.stream.busy_us / makespan_us
                                  if makespan_us > 0 else 0.0),
                }
                for shard in self.pool.shards
            ],
        }


__all__ = ["ServiceConfig", "ServiceResult", "SortService"]
