"""Output validation: the correctness oracles used by tests and the harness.

A sorting result is correct when (a) the output keys are non-decreasing, (b)
the output is a permutation of the input, and — for key-value sorts — (c) every
output value is still attached to its original key. These checks are cheap
(O(n log n) with NumPy) and are run by the harness after every functional
simulation, so a mis-implemented kernel can never silently produce a plausible
looking benchmark number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.base import SortResult


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating one sort result."""

    is_sorted: bool
    is_permutation: bool
    values_consistent: bool
    n: int
    message: str = ""

    @property
    def ok(self) -> bool:
        return self.is_sorted and self.is_permutation and self.values_consistent


def is_sorted(keys: np.ndarray) -> bool:
    """True when ``keys`` is non-decreasing."""
    keys = np.asarray(keys)
    if keys.size <= 1:
        return True
    return bool(np.all(keys[1:] >= keys[:-1]))


def is_permutation(original: np.ndarray, result: np.ndarray) -> bool:
    """True when ``result`` is a permutation of ``original`` (multiset equality)."""
    original = np.asarray(original)
    result = np.asarray(result)
    if original.shape != result.shape:
        return False
    return bool(np.array_equal(np.sort(original, kind="stable"),
                               np.sort(result, kind="stable")))


def values_follow_keys(
    input_keys: np.ndarray,
    input_values: Optional[np.ndarray],
    output_keys: np.ndarray,
    output_values: Optional[np.ndarray],
) -> bool:
    """True when every output (key, value) pair existed in the input.

    For the index payloads the workload generator produces (value = original
    position) this is an exact check: ``input_keys[output_values]`` must equal
    ``output_keys``. For arbitrary payloads it falls back to multiset equality
    of the (key, value) pairs.
    """
    if input_values is None and output_values is None:
        return True
    if input_values is None or output_values is None:
        return False
    input_keys = np.asarray(input_keys)
    output_keys = np.asarray(output_keys)
    output_values = np.asarray(output_values)
    input_values = np.asarray(input_values)
    if output_values.shape != output_keys.shape:
        return False
    # Fast path: payload is the original index.
    if (np.issubdtype(input_values.dtype, np.integer)
            and input_values.size
            and np.array_equal(np.sort(input_values, kind="stable"),
                               np.arange(input_values.size, dtype=input_values.dtype))):
        lookup = np.empty(input_values.size, dtype=np.int64)
        lookup[input_values.astype(np.int64)] = np.arange(input_values.size)
        original_position = lookup[output_values.astype(np.int64)]
        return bool(np.array_equal(input_keys[original_position], output_keys))
    # General path: compare the multisets of (key, value) pairs.
    in_pairs = np.rec.fromarrays([input_keys, input_values], names="k,v")
    out_pairs = np.rec.fromarrays([output_keys, output_values], names="k,v")
    return bool(np.array_equal(np.sort(in_pairs, order=("k", "v")),
                               np.sort(out_pairs, order=("k", "v"))))


def validate_result(
    result: SortResult,
    input_keys: np.ndarray,
    input_values: Optional[np.ndarray] = None,
) -> ValidationReport:
    """Run all three checks against a :class:`SortResult`."""
    sorted_ok = is_sorted(result.keys)
    perm_ok = is_permutation(input_keys, result.keys)
    values_ok = values_follow_keys(input_keys, input_values, result.keys, result.values)
    problems = []
    if not sorted_ok:
        problems.append("output keys are not sorted")
    if not perm_ok:
        problems.append("output keys are not a permutation of the input")
    if not values_ok:
        problems.append("values did not follow their keys")
    return ValidationReport(
        is_sorted=sorted_ok,
        is_permutation=perm_ok,
        values_consistent=values_ok,
        n=int(np.asarray(input_keys).size),
        message="; ".join(problems) if problems else "ok",
    )


__all__ = [
    "ValidationReport",
    "is_sorted",
    "is_permutation",
    "values_follow_keys",
    "validate_result",
]
