"""Result validation and cross-algorithm comparison metrics."""

from .comparisons import (
    SpeedupSummary,
    crossover_size,
    rate_table,
    robustness,
    scaling_exponent,
    speedup_summary,
)
from .validation import (
    ValidationReport,
    is_permutation,
    is_sorted,
    validate_result,
    values_follow_keys,
)

__all__ = [
    "SpeedupSummary",
    "crossover_size",
    "rate_table",
    "robustness",
    "scaling_exponent",
    "speedup_summary",
    "ValidationReport",
    "is_permutation",
    "is_sorted",
    "validate_result",
    "values_follow_keys",
]
