"""Cross-algorithm comparison metrics.

These are the summary statistics the paper's abstract and Section 6 quote:
"at least 25 % and on average 68 % faster than ...", "more than 2 times faster
than quicksort", crossover points between curves, and the robustness of a
sorter across distributions (how little its rate varies). The claims benchmark
(`benchmarks/test_bench_claims.py`) evaluates all of them on the reproduced
curves and compares against the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class SpeedupSummary:
    """Summary of pointwise speed-ups of algorithm A over algorithm B."""

    algorithm: str
    baseline: str
    minimum: float
    average: float
    maximum: float
    points: int

    def describe(self) -> str:
        return (
            f"{self.algorithm} vs {self.baseline}: "
            f"min {self.minimum:.2f}x, avg {self.average:.2f}x, "
            f"max {self.maximum:.2f}x over {self.points} sizes"
        )


def speedup_summary(
    rates_a: Sequence[float], rates_b: Sequence[float],
    algorithm: str = "A", baseline: str = "B",
) -> SpeedupSummary:
    """Pointwise ratio statistics of two aligned rate series (NaNs skipped)."""
    ratios = [
        a / b
        for a, b in zip(rates_a, rates_b)
        if np.isfinite(a) and np.isfinite(b) and b > 0
    ]
    if not ratios:
        return SpeedupSummary(algorithm, baseline, float("nan"), float("nan"),
                              float("nan"), 0)
    return SpeedupSummary(
        algorithm=algorithm,
        baseline=baseline,
        minimum=float(np.min(ratios)),
        average=float(np.mean(ratios)),
        maximum=float(np.max(ratios)),
        points=len(ratios),
    )


def crossover_size(
    sizes: Sequence[int], rates_a: Sequence[float], rates_b: Sequence[float]
) -> Optional[int]:
    """Smallest size from which algorithm A is at least as fast as B.

    Returns ``None`` when A never catches up within the measured range.
    """
    for n, a, b in zip(sizes, rates_a, rates_b):
        if np.isfinite(a) and np.isfinite(b) and a >= b:
            return int(n)
    return None


def robustness(rates_by_distribution: Mapping[str, Sequence[float]]) -> float:
    """Worst-case over best-case mean rate across distributions (0..1].

    The paper's robustness claim — sample sort "performs almost equally well"
    on all tested distributions — corresponds to a value close to 1; a sorter
    that collapses on one distribution (bbsort on DDuplicates) scores near 0.
    """
    means = []
    for rates in rates_by_distribution.values():
        finite = [r for r in rates if np.isfinite(r)]
        if not finite:
            return 0.0
        means.append(float(np.mean(finite)))
    if not means or max(means) <= 0:
        return 0.0
    return float(min(means) / max(means))


def scaling_exponent(sizes: Sequence[int], times_us: Sequence[float]) -> float:
    """Fitted exponent b of time ~ n^b (1.0 = perfectly linear scaling).

    The paper reports that sample sort "scales almost linearly with the input
    size"; the claims benchmark checks the fitted exponent stays near 1.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    times = np.asarray(times_us, dtype=np.float64)
    mask = np.isfinite(times) & (times > 0) & (sizes > 0)
    if mask.sum() < 2:
        return float("nan")
    slope, _ = np.polyfit(np.log(sizes[mask]), np.log(times[mask]), 1)
    return float(slope)


def rate_table(
    sizes: Sequence[int], series: Mapping[str, Sequence[float]],
) -> list[dict]:
    """Reshape aligned rate series into a list of per-size rows (for reports)."""
    rows = []
    for index, n in enumerate(sizes):
        row: dict = {"n": int(n)}
        for name, rates in series.items():
            row[name] = float(rates[index]) if index < len(rates) else float("nan")
        rows.append(row)
    return rows


__all__ = [
    "SpeedupSummary",
    "speedup_summary",
    "crossover_size",
    "robustness",
    "scaling_exponent",
    "rate_table",
]
